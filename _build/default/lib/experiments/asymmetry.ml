module Tm = Ic_traffic.Tm
module Series = Ic_traffic.Series
module Vec = Ic_linalg.Vec

let n = 10

let bins = 96

let exit_node = 8 (* hot-potato: forward traffic leaves here... *)

let entry_node = 9 (* ...and reverse traffic re-enters here *)

let binning = Ic_timeseries.Timebin.five_min

(* Traffic with a hot-potato share h: each node's connection volume splits
   into an internal part following Equation 2 exactly and an external part
   whose forward bytes exit at [exit_node] while the reverse bytes re-enter
   at [entry_node]. *)
let generate_series rng h =
  let f = 0.22 in
  let preference =
    Vec.normalize_sum
      (Array.init n (fun _ -> Ic_prng.Sampler.lognormal rng ~mu:(-2.) ~sigma:1.))
  in
  let base = Array.init n (fun _ -> Ic_prng.Sampler.lognormal rng ~mu:16. ~sigma:1.) in
  let phase = Array.init n (fun _ -> Ic_prng.Rng.float_range rng 0. 6.28) in
  let tms =
    Array.init bins (fun t ->
        let activity =
          Array.init n (fun i ->
              base.(i) *. (1.3 +. sin ((float_of_int t /. 8.) +. phase.(i))))
        in
        let internal =
          Ic_core.Model.simplified ~f
            ~activity:(Vec.scale (1. -. h) activity)
            ~preference
        in
        let tm = Tm.copy internal in
        (* external share: hot-potato around the peering pair *)
        Array.iteri
          (fun i a ->
            let vol = h *. a in
            if vol > 0. && i <> exit_node && i <> entry_node then begin
              Tm.add_to tm i exit_node (f *. vol);
              Tm.add_to tm entry_node i ((1. -. f) *. vol)
            end)
          activity;
        tm)
  in
  Series.make binning tms

let run _ctx =
  let shares = [ 0.0; 0.1; 0.2; 0.4 ] in
  let results =
    List.map
      (fun h ->
        let rng = Ic_prng.Rng.create 56 in
        let series = generate_series rng h in
        let simplified = Ic_core.Fit.fit_stable_fp series in
        let f_matrix = Ic_core.Fit.fit_general_f simplified.params series in
        let general_err =
          Array.init bins (fun t ->
              Ic_traffic.Error.rel_l2_temporal (Series.tm series t)
                (Ic_core.Model.general ~f_matrix
                   ~activity:simplified.params.activity.(t)
                   ~preference:simplified.params.preference))
        in
        let mean a =
          Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
        in
        (* induced asymmetry at the peering pair: the fitted f toward the
           exit vs the fitted f back from the entry for a representative
           inner node *)
        let probe = 0 in
        let f_to_exit = Ic_linalg.Mat.get f_matrix probe exit_node in
        let f_from_entry = Ic_linalg.Mat.get f_matrix entry_node probe in
        (h, simplified.mean_error, mean general_err, simplified.params.f,
         f_to_exit, f_from_entry))
      shares
  in
  let col f = Array.of_list (List.map f results) in
  {
    Outcome.id = "asymmetry";
    title = "Hot-potato routing asymmetry vs the simplified IC model (s5.6)";
    paper_claim =
      "the simplified model should degrade as routing asymmetry grows, \
       while per-OD f_ij absorbs it (the paper's open question)";
    series =
      [
        Ic_report.Series_out.make_xy ~label:"simplified_fit_error"
          ~xs:(col (fun (h, _, _, _, _, _) -> h))
          ~ys:(col (fun (_, e, _, _, _, _) -> e));
        Ic_report.Series_out.make_xy ~label:"general_fit_error"
          ~xs:(col (fun (h, _, _, _, _, _) -> h))
          ~ys:(col (fun (_, _, e, _, _, _) -> e));
      ];
    summary =
      List.map
        (fun (h, se, ge, fhat, f_exit, f_entry) ->
          Printf.sprintf
            "h=%.1f: simplified RelL2 %.4f (f=%.3f) vs general %.4f; \
             fitted f(probe->exit)=%.2f, f(entry->probe)=%.2f"
            h se fhat ge f_exit f_entry)
        results;
  }
