(** Ablations for the design choices called out in DESIGN.md. *)

val ipf : Context.t -> Outcome.t
(** Estimation pipeline with and without the final IPF step. *)

val solver : Context.t -> Outcome.t
(** Tomogravity normal equations solved by ridge-Cholesky vs conjugate
    gradient: agreement of the resulting estimates and errors. *)

val snmp : Context.t -> Outcome.t
(** Estimation error as SNMP counter noise and missing polls grow. *)

val entropy : Context.t -> Outcome.t
(** Step-2 refinement comparison: prior-weighted least squares vs
    maximum-entropy (KL) projection, each with the gravity and the IC
    prior. *)

val stale_routing : Context.t -> Outcome.t
(** A core link fails mid-week: traffic reroutes but the estimator keeps
    the pre-failure routing matrix. Quantifies the cost of the "R is known
    exactly" assumption against a promptly-updated R. *)

val general_f : Context.t -> Outcome.t
(** Fit quality of the simplified (one global [f]) model vs the general
    model's per-OD [f_ij] (Equation 1), and how well the fitted [f_ij]
    recovers the generator's spatial jitter. *)

val optimizer : Context.t -> Outcome.t
(** Block-coordinate descent vs projected gradient on the same week: the
    optimizer-robustness cross-check (the paper's fmincon runs cannot be
    replayed). *)

val model_variants : Context.t -> Outcome.t
(** Fit error of the three temporal variants (time-varying / stable-f /
    stable-fP) on the same week, demonstrating the paper's point that the
    stable-fP model loses little accuracy despite far fewer inputs. *)
