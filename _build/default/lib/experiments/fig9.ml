let dataset_part ctx id =
  let name = Context.dataset_name id in
  let fit = Context.weekly_fit ctx id 0 in
  let activities = fit.params.activity in
  let n = Array.length fit.params.preference in
  let t_count = Array.length activities in
  let series_of i = Array.init t_count (fun t -> activities.(t).(i)) in
  let means =
    Array.init n (fun i ->
        Array.fold_left ( +. ) 0. (series_of i) /. float_of_int t_count)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare means.(b) means.(a)) order;
  let largest = order.(0) and medium = order.(n / 2) and smallest = order.(n - 1) in
  let week = Context.week_series ctx id 0 in
  let bins_per_day =
    Ic_timeseries.Timebin.bins_per_day week.Ic_traffic.Series.binning
    / Context.stride ctx
  in
  let periodicity =
    if bins_per_day >= 1 && bins_per_day < t_count then
      Ic_timeseries.Acf.periodicity_strength (series_of largest)
        ~period:bins_per_day
    else Float.nan
  in
  let corr_pa = Ic_stats.Corr.spearman fit.params.preference means in
  let series =
    List.map
      (fun (tag, i) ->
        Ic_report.Series_out.make
          ~label:(Printf.sprintf "%s_A_%s_node%d" name tag i)
          (series_of i))
      [ ("largest", largest); ("medium", medium); ("smallest", smallest) ]
  in
  let summary =
    [
      Printf.sprintf
        "%s: daily-lag autocorrelation of largest node's A(t): %.2f; \
         spearman corr(P, mean A) = %.2f"
        name periodicity corr_pa;
    ]
  in
  (series, summary)

let run ctx =
  let gs, gsum = dataset_part ctx Context.Geant in
  let ts, tsum = dataset_part ctx Context.Totem in
  {
    Outcome.id = "fig9";
    title = "Fitted activity time series (largest / medium / smallest node)";
    paper_claim =
      "strong daily and weekend periodicity, most pronounced for \
       high-activity nodes; preference uncorrelated with activity";
    series = gs @ ts;
    summary = gsum @ tsum;
  }
