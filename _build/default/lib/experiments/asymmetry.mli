(** Section 5.6 study: routing asymmetry and the general IC model.

    The paper's Figure 10 describes hot-potato routing between peering
    ASes: a connection initiated at node i exits toward the peer at node j,
    but its reverse traffic re-enters at a different peering point k — so
    forward and reverse bytes of the same connections land on different OD
    pairs, violating the simplified model's single network-wide [f]. The
    paper leaves quantifying this to future work.

    This experiment generates traffic with a controllable hot-potato share
    h (a fraction of every node's connections respond beyond a designated
    peering pair): forward bytes land on OD (i, exit), reverse bytes on
    (entry, i). For each h it fits the simplified stable-fP model and then
    the general per-OD-f model on top of it, reporting both fit errors and
    the induced f_ij vs f_ji asymmetry at the peering nodes. *)

val run : Context.t -> Outcome.t
