let improvement ctx id =
  let week = Context.week_series ctx id 0 in
  let fit = Context.weekly_fit ctx id 0 in
  let gravity = Ic_core.Fit.gravity_fit week in
  let gravity_err = Ic_core.Fit.per_bin_error week gravity in
  Ic_traffic.Error.improvement_series ~baseline:gravity_err
    ~candidate:fit.per_bin_error

let run ctx =
  let geant = improvement ctx Context.Geant in
  let totem = improvement ctx Context.Totem in
  {
    Outcome.id = "fig3";
    title = "Temporal % improvement of stable-fP IC fit over gravity fit";
    paper_claim = "Geant ~20-25% improvement; Totem ~6-8%";
    series =
      [
        Ic_report.Series_out.make ~label:"geant_improvement_pct" geant;
        Ic_report.Series_out.make ~label:"totem_improvement_pct" totem;
      ];
    summary =
      [
        Printf.sprintf "geant mean improvement: %s"
          (Est_common.mean_with_ci geant);
        Printf.sprintf "totem mean improvement: %s (median %.1f%%)"
          (Est_common.mean_with_ci totem)
          (Ic_stats.Descriptive.median totem);
      ];
  }
