let part ctx id ~calib_week ~target_week =
  let fit = Context.weekly_fit ctx id calib_week in
  let ic_prior week =
    Ic_estimation.Prior.ic_stable_fp ~f:fit.params.f
      ~preference:fit.params.preference week
  in
  Est_common.improvements ctx id ~week:target_week ~ic_prior

let run ctx =
  (* Geant: previous week's parameters; Totem: two weeks back (paper 6.2). *)
  let gi, gge, gie = part ctx Context.Geant ~calib_week:0 ~target_week:1 in
  let ti, tge, tie = part ctx Context.Totem ~calib_week:0 ~target_week:2 in
  {
    Outcome.id = "fig12";
    title =
      "TM estimation improvement over gravity, f and P from an earlier week";
    paper_claim =
      "10-20% improvement on both datasets (Geant: 1 week back, Totem: 2 \
       weeks back)";
    series =
      [
        Ic_report.Series_out.make ~label:"geant_improvement_pct" gi;
        Ic_report.Series_out.make ~label:"totem_improvement_pct" ti;
      ];
    summary =
      [
        Printf.sprintf
          "geant: mean improvement %s (gravity err %.3f, IC err %.3f)"
          (Est_common.mean_with_ci gi) gge gie;
        Printf.sprintf
          "totem: mean improvement %s (gravity err %.3f, IC err %.3f)"
          (Est_common.mean_with_ci ti) tge tie;
      ];
  }
