let run ctx =
  let calib = Context.week_series ctx Context.Geant 0 in
  let truth = Context.week_series ctx Context.Geant 1 in
  let calib_fit = Context.weekly_fit ctx Context.Geant 0 in
  let target_fit = Context.weekly_fit ctx Context.Geant 1 in
  let routing =
    Ic_topology.Routing.build (Context.geant ctx).Ic_datasets.Dataset.graph
  in
  let config = Ic_estimation.Pipeline.default_config routing in
  let priors =
    [
      ("gravity", Ic_estimation.Prior.gravity truth);
      ("fanout[11]", Ic_estimation.Prior.fanout ~calibration:calib truth);
      ( "ic-measured",
        Ic_estimation.Prior.ic_measured target_fit.params
          truth.Ic_traffic.Series.binning );
      ( "ic-stable-fp",
        Ic_estimation.Prior.ic_stable_fp ~f:calib_fit.params.f
          ~preference:calib_fit.params.preference truth );
      ( "ic-stable-f",
        Ic_estimation.Prior.ic_stable_f ~f:calib_fit.params.f truth );
    ]
  in
  let results =
    List.map
      (fun (name, prior) ->
        (name, Ic_estimation.Pipeline.run config ~truth ~prior))
      priors
  in
  let gravity_err =
    (List.assoc "gravity" results).Ic_estimation.Pipeline.mean_error
  in
  {
    Outcome.id = "priors-panel";
    title = "All estimation priors on one Geant-like week";
    paper_claim =
      "extends Figs 11-13: every informed prior beats gravity; the fanout \
       prior needs a full calibrated TM (n^2 parameters) while the IC \
       priors recover most of that gain from n+1 calibrated parameters";
    series =
      List.map
        (fun (name, (r : Ic_estimation.Pipeline.result)) ->
          Ic_report.Series_out.make ~label:(name ^ "_error") r.per_bin_error)
        results;
    summary =
      (let n = Ic_traffic.Series.size truth in
       let calibrated = function
         | "gravity" -> 0
         | "fanout[11]" -> n * n
         | "ic-measured" -> -1 (* uses the target week itself *)
         | "ic-stable-fp" -> n + 1
         | "ic-stable-f" -> 1
         | _ -> 0
       in
       List.map
         (fun (name, (r : Ic_estimation.Pipeline.result)) ->
           let inputs =
             match calibrated name with
             | -1 -> "target-week fit"
             | 0 -> "none"
             | k -> Printf.sprintf "%d calibrated params" k
           in
           Printf.sprintf "%-14s mean RelL2 %.4f (%+.1f%% vs gravity; %s)"
             name r.mean_error
             (100. *. (gravity_err -. r.mean_error) /. gravity_err)
             inputs)
         results);
  }
