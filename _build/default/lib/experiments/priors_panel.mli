(** Cross-prior panel: all estimation priors — gravity, the fanout model of
    Medina et al. (paper reference [11]), and the three IC scenarios — run
    through the same pipeline on the same Géant-like week, extending the
    paper's Figures 11–13 into a single comparison table. The fanout prior
    calibrates n^2 parameters (a whole prior TM) against the IC model's
    n+1, so the panel reports each prior's gain next to how much measured
    structure it consumes. *)

val run : Context.t -> Outcome.t
