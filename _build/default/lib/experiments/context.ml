type dataset_id = Geant | Totem

type t = {
  stride : int;
  weeks_geant : int;
  weeks_totem : int;
  out_dir : string option;
  mutable geant : Ic_datasets.Dataset.t option;
  mutable totem : Ic_datasets.Dataset.t option;
  mutable abilene : Ic_datasets.Abilene.t option;
  fit_cache :
    (dataset_id * int, Ic_core.Params.stable_fp Ic_core.Fit.fitted) Hashtbl.t;
}

let create ?(stride = 1) ?(weeks_geant = 3) ?(weeks_totem = 7) ?out_dir () =
  if stride < 1 then invalid_arg "Context.create: stride must be >= 1";
  {
    stride;
    weeks_geant;
    weeks_totem;
    out_dir;
    geant = None;
    totem = None;
    abilene = None;
    fit_cache = Hashtbl.create 16;
  }

let quick () = create ~stride:24 ()

let stride t = t.stride

let out_dir t = t.out_dir

let geant t =
  match t.geant with
  | Some d -> d
  | None ->
      let d = Ic_datasets.Geant.generate ~weeks:t.weeks_geant () in
      t.geant <- Some d;
      d

let totem t =
  match t.totem with
  | Some d -> d
  | None ->
      let d = Ic_datasets.Totem.generate ~weeks:t.weeks_totem () in
      t.totem <- Some d;
      d

let dataset t = function Geant -> geant t | Totem -> totem t

let abilene t =
  match t.abilene with
  | Some a -> a
  | None ->
      let a = Ic_datasets.Abilene.generate () in
      t.abilene <- Some a;
      a

let dataset_name = function Geant -> "geant" | Totem -> "totem"

let week_series t id w =
  let ds = dataset t id in
  let week = Ic_datasets.Dataset.week ds w in
  if t.stride = 1 then week
  else begin
    (* at least one bin even under an absurd stride *)
    let len = Stdlib.max 1 (Ic_traffic.Series.length week / t.stride) in
    Ic_traffic.Series.make week.Ic_traffic.Series.binning
      (Array.init len (fun k ->
           Ic_traffic.Series.tm week
             (Stdlib.min (k * t.stride) (Ic_traffic.Series.length week - 1))))
  end

let weekly_fit t id w =
  match Hashtbl.find_opt t.fit_cache (id, w) with
  | Some fit -> fit
  | None ->
      let fit = Ic_core.Fit.fit_stable_fp (week_series t id w) in
      Hashtbl.replace t.fit_cache (id, w) fit;
      fit
