(** Figure 9: fitted activity time series [A_i(t)] for the largest, a
    medium and the smallest node (by mean activity) in each dataset. The
    paper observes strong daily periodicity, weekend dips, and cleaner
    patterns at higher aggregation levels. Additionally reports the
    preference/activity correlation, which Section 5.4 finds absent. *)

val run : Context.t -> Outcome.t
