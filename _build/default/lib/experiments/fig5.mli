(** Figure 5: optimal (fitted) [f] over seven consecutive Totem weeks.
    The paper finds values close to 0.2 that are stable from week to
    week. *)

val run : Context.t -> Outcome.t
