(** Shared machinery for the TM-estimation experiments (Figures 11–13):
    build the routing matrix, run the three-step pipeline with a gravity
    prior and with an IC prior, and report per-bin improvement. *)

val improvements :
  Context.t ->
  Context.dataset_id ->
  week:int ->
  ic_prior:(Ic_traffic.Series.t -> Ic_traffic.Series.t) ->
  float array * float * float
(** [improvements ctx id ~week ~ic_prior] estimates the given week with the
    gravity prior and with [ic_prior applied to the week's series], and
    returns (per-bin % improvement, gravity mean error, IC mean error). *)

val mean : float array -> float

val mean_with_ci : float array -> string
(** Render the mean percentage improvement with a bootstrap 95% confidence
    interval, e.g. ["12.3% [10.9, 13.6]"]. Deterministic (fixed bootstrap
    seed). *)
