(** All experiments by id. *)

val all : (string * (Context.t -> Outcome.t)) list
(** In presentation order: section3, fig3–fig13, ablations. *)

val find : string -> (Context.t -> Outcome.t) option

val ids : string list
