let part ctx id ~calib_week ~target_week =
  let fit = Context.weekly_fit ctx id calib_week in
  let ic_prior week = Ic_estimation.Prior.ic_stable_f ~f:fit.params.f week in
  Est_common.improvements ctx id ~week:target_week ~ic_prior

let run ctx =
  let gi, gge, gie = part ctx Context.Geant ~calib_week:0 ~target_week:1 in
  let ti, tge, tie = part ctx Context.Totem ~calib_week:0 ~target_week:2 in
  {
    Outcome.id = "fig13";
    title = "TM estimation improvement over gravity, only f known";
    paper_claim = "Geant ~8% improvement; Totem 1-2% — still above gravity";
    series =
      [
        Ic_report.Series_out.make ~label:"geant_improvement_pct" gi;
        Ic_report.Series_out.make ~label:"totem_improvement_pct" ti;
      ];
    summary =
      [
        Printf.sprintf
          "geant: mean improvement %s (gravity err %.3f, IC err %.3f)"
          (Est_common.mean_with_ci gi) gge gie;
        Printf.sprintf
          "totem: mean improvement %s (gravity err %.3f, IC err %.3f)"
          (Est_common.mean_with_ci ti) tge tie;
      ];
  }
