(** Figure 12: TM-estimation improvement over gravity using the stable-fP
    prior — [f] and [{P_i}] calibrated on an earlier week (one week back for
    Géant, two for Totem, as in the paper), activities recovered from the
    estimated week's marginal counts (Equations 7–9). Paper: 10–20%
    improvement on both datasets. *)

val run : Context.t -> Outcome.t
