(** Micro-to-macro validation: generate one day of traffic at the
    connection level (the process the IC model abstracts — initiators,
    independent responders, per-application forward/reverse splits) and
    check that the aggregate behaves exactly as the formula-level model and
    datasets assume:

    - the byte-weighted forward fraction converges to the application mix's
      aggregate [f];
    - the fitted stable-fP model recovers that [f] and the responder
      preference vector;
    - the IC model fits the aggregated TMs better than the gravity model.

    This is the evidence behind DESIGN.md's substitution of formula-level
    generation for the multi-week datasets. *)

val run : Context.t -> Outcome.t
