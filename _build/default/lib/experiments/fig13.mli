(** Figure 13: TM-estimation improvement over gravity using the stable-f
    prior — only [f] known (from an earlier week); activities and
    preferences recovered per bin from marginal counts in closed form
    (Equations 11–12). Paper: ~8% on Géant, 1–2% on Totem — the least
    informed IC prior still beats gravity. *)

val run : Context.t -> Outcome.t
