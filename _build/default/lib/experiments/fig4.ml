let mean a =
  if Array.length a = 0 then 0.
  else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let run ctx =
  let ab = Context.abilene ctx in
  let measure trace =
    Ic_netflow.Trace.measure_f trace ~bin_s:300.
  in
  let clev = measure ab.Ic_datasets.Abilene.trace_clev in
  let kscy = measure ab.Ic_datasets.Abilene.trace_kscy in
  let f_ij m = Array.map (fun b -> b.Ic_netflow.Trace.f_ij) m in
  let f_ji m = Array.map (fun b -> b.Ic_netflow.Trace.f_ji) m in
  let unknown = Ic_netflow.Trace.unknown_fraction clev in
  let mix_f = Ic_netflow.App_mix.aggregate_f ab.Ic_datasets.Abilene.mix in
  {
    Outcome.id = "fig4";
    title = "Measured f for IPLS<->CLEV per 5-minute trace bin";
    paper_claim =
      "f in 0.2-0.3 at all times, the two directions similar, unknown \
       traffic < 20%";
    series =
      [
        Ic_report.Series_out.make ~label:"f_IPLS_to_CLEV" (f_ij clev);
        Ic_report.Series_out.make ~label:"f_CLEV_to_IPLS" (f_ji clev);
        Ic_report.Series_out.make ~label:"f_IPLS_to_KSCY" (f_ij kscy);
        Ic_report.Series_out.make ~label:"f_KSCY_to_IPLS" (f_ji kscy);
      ];
    summary =
      [
        Printf.sprintf "mean f IPLS->CLEV: %.3f, CLEV->IPLS: %.3f"
          (mean (f_ij clev)) (mean (f_ji clev));
        Printf.sprintf "mean f IPLS->KSCY: %.3f, KSCY->IPLS: %.3f"
          (mean (f_ij kscy)) (mean (f_ji kscy));
        Printf.sprintf "application-mix aggregate f: %.3f" mix_f;
        Printf.sprintf "unknown traffic fraction: %.1f%%" (100. *. unknown);
      ];
  }
