let run _ctx =
  let tm = Ic_core.Model.fig2_example () in
  let cond i = Ic_core.Model.conditional_egress tm ~egress:0 ~ingress:i in
  let marginal = Ic_core.Model.marginal_egress tm ~egress:0 in
  let gap = Ic_gravity.Gravity.conditional_independence_gap tm in
  let n = 22 and t = 2016 in
  {
    Outcome.id = "section3";
    title = "Worked example: independence fails at the packet level";
    paper_claim =
      "P(E=A|I=A)~0.50, P(E=A|I=B)~0.93, P(E=A|I=C)~0.95, P(E=A)~0.65; \
       DOF: gravity 2nt-1, time-varying 3nt, stable-f 2nt+1, stable-fP \
       nt+n+1";
    series = [];
    summary =
      [
        Printf.sprintf "P(E=A|I=A)=%.3f P(E=A|I=B)=%.3f P(E=A|I=C)=%.3f"
          (cond 0) (cond 1) (cond 2);
        Printf.sprintf "P(E=A)=%.3f; max independence gap %.3f" marginal gap;
        Printf.sprintf
          "DOF at n=%d t=%d: gravity=%d time-varying=%d stable-f=%d \
           stable-fP=%d"
          n t
          (Ic_core.Params.dof_gravity ~n ~t)
          (Ic_core.Params.dof_time_varying ~n ~t)
          (Ic_core.Params.dof_stable_f ~n ~t)
          (Ic_core.Params.dof_stable_fp ~n ~t);
      ];
  }
