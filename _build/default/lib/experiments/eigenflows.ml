(* PCA over the dominant OD flows: the volume distribution is so skewed
   that the top ~150 pairs carry nearly all bytes, and restricting to them
   keeps the Jacobi eigensolver fast (the covariance dimension is the
   number of flows, independent of the bin count). *)
let max_flows = 150

let dataset_part ctx id =
  let name = Context.dataset_name id in
  let week = Context.week_series ctx id 0 in
  let t_count = Ic_traffic.Series.length week in
  let n = Ic_traffic.Series.size week in
  let mean_volume =
    Array.init (n * n) (fun s ->
        let acc = ref 0. in
        for t = 0 to t_count - 1 do
          acc :=
            !acc +. Ic_traffic.Tm.get (Ic_traffic.Series.tm week t) (s / n) (s mod n)
        done;
        !acc /. float_of_int t_count)
  in
  let order = Array.init (n * n) (fun s -> s) in
  Array.sort (fun a b -> compare mean_volume.(b) mean_volume.(a)) order;
  let kept = Stdlib.min max_flows (n * n) in
  let total_bytes = Ic_linalg.Vec.sum mean_volume in
  let kept_bytes =
    let acc = ref 0. in
    for k = 0 to kept - 1 do
      acc := !acc +. mean_volume.(order.(k))
    done;
    !acc
  in
  let data =
    Ic_linalg.Mat.init t_count kept (fun t k ->
        let s = order.(k) in
        Ic_traffic.Tm.get (Ic_traffic.Series.tm week t) (s / n) (s mod n))
  in
  let pca = Ic_stats.Pca.fit data in
  let ratios = Ic_stats.Pca.explained_ratio pca in
  let top = Array.sub ratios 0 (Stdlib.min 20 (Array.length ratios)) in
  let cum = Array.make (Array.length top) 0. in
  Array.iteri
    (fun k r -> cum.(k) <- (if k = 0 then r else cum.(k - 1) +. r))
    top;
  let k90 = Ic_stats.Pca.components_for pca ~variance:0.9 in
  let series =
    [
      Ic_report.Series_out.make ~label:(name ^ "_scree") top;
      Ic_report.Series_out.make ~label:(name ^ "_cumulative") cum;
    ]
  in
  let summary =
    Printf.sprintf
      "%s: top %d of %d OD flows (%.0f%% of bytes); %d eigenflows explain \
       90%% of the variance (top-1 %.0f%%, top-5 %.0f%%)"
      name kept (n * n)
      (100. *. kept_bytes /. Float.max total_bytes 1e-12)
      k90 (100. *. cum.(0))
      (100. *. cum.(Stdlib.min 4 (Array.length cum - 1)))
  in
  (series, [ summary ])

let run ctx =
  let gs, gsum = dataset_part ctx Context.Geant in
  let ts, tsum = dataset_part ctx Context.Totem in
  {
    Outcome.id = "eigenflows";
    title = "Eigenflow analysis of the weekly OD ensembles (ref [8])";
    paper_claim =
      "real TM weeks are low-dimensional: a handful of eigenflows carry \
       most of the variance — a structure the stable-fP model (n activity \
       inputs) predicts";
    series = gs @ ts;
    summary = gsum @ tsum;
  }
