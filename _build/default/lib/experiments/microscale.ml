let n = 8

let bins = 96 (* eight hours of 5-minute bins *)

let binning = Ic_timeseries.Timebin.five_min

(* The default mix's P2P tail (alpha = 1.3) has infinite variance: at any
   connection count we can afford to simulate, single elephant transfers
   dominate per-bin OD volumes and every model's per-bin fit is
   noise-bound. For this validation the tail indices are raised to 1.8 —
   still heavy-tailed, finite-variance — with the forward fractions (the
   quantity under study) unchanged. *)
let tamed_mix =
  Ic_netflow.App_mix.make
    (Array.to_list (Ic_netflow.App_mix.apps Ic_netflow.App_mix.default)
    |> List.map (fun (app : Ic_netflow.App_mix.app) ->
           ( { app with size_alpha = Float.max app.size_alpha 1.8 },
             1.0 (* equal connection-count weights shift the aggregate f
                    slightly; recomputed below *) )))

let run _ctx =
  let rng = Ic_prng.Rng.create 808 in
  let preference =
    Ic_linalg.Vec.normalize_sum
      (Array.init n (fun _ -> Ic_prng.Sampler.lognormal rng ~mu:(-2.) ~sigma:1.))
  in
  (* per-node diurnal activity targets; tens of MB per bin so each OD pair
     aggregates hundreds of connections (the paper's "high enough level of
     aggregation") *)
  let activity_bytes =
    Array.init n (fun _ ->
        let gen =
          Ic_timeseries.Cyclo.make
            ~noise_sigma:0.1
            ~base_level:(Ic_prng.Rng.float_range rng 1e8 3e8)
            ()
        in
        Ic_timeseries.Cyclo.generate gen binning (Ic_prng.Rng.fork rng) ~bins)
  in
  let workload =
    {
      Ic_netflow.Connection.activity_bytes =
        Array.init bins (fun t -> Array.init n (fun i -> activity_bytes.(i).(t)));
      preference;
      mix = tamed_mix;
      bin_s = 300.;
      mean_rate_bps = 1e6;
    }
  in
  let connections = Ic_netflow.Connection.generate workload rng in
  let series = Ic_netflow.Aggregate.to_series connections ~n ~binning ~bins in
  let mix_f = Ic_netflow.App_mix.aggregate_f tamed_mix in
  let conn_f = Ic_netflow.Connection.aggregate_forward_fraction connections in
  let fit = Ic_core.Fit.fit_stable_fp series in
  let gravity_err =
    Ic_core.Fit.per_bin_error series (Ic_core.Fit.gravity_fit series)
  in
  let corr_p = Ic_stats.Corr.pearson preference fit.params.preference in
  {
    Outcome.id = "microscale";
    title = "Connection-level process vs the formula-level IC model";
    paper_claim =
      "the model's microscopic story: independent connections with \
       app-mix forward splits aggregate to Equation 2, with f set by the \
       application mix";
    series =
      [
        Ic_report.Series_out.make ~label:"ic_fit_error" fit.per_bin_error;
        Ic_report.Series_out.make ~label:"gravity_fit_error" gravity_err;
      ];
    summary =
      [
        Printf.sprintf
          "%d connections over eight hours; byte-weighted f %.3f (mix \
           aggregate %.3f)"
          (List.length connections) conn_f mix_f;
        Printf.sprintf
          "stable-fP fit: f=%.3f, corr(fitted P, true P)=%.3f, mean RelL2 \
           %.3f"
          fit.params.f corr_p fit.mean_error;
        Printf.sprintf "gravity fit mean RelL2 %.3f (IC %+.1f%% better)"
          (Est_common.mean gravity_err)
          (100.
          *. (Est_common.mean gravity_err -. fit.mean_error)
          /. Est_common.mean gravity_err);
      ];
  }
