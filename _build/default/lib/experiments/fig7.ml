let dataset_part ctx id =
  let name = Context.dataset_name id in
  let p = (Context.weekly_fit ctx id 0).params.preference in
  let cmp = Ic_stats.Fit_dist.compare_tail_models p in
  let ccdf = Ic_stats.Ccdf.of_sample p in
  let points = Ic_stats.Ccdf.log_log_points ccdf in
  let xs = Array.of_list (List.map fst points) in
  let emp = Array.of_list (List.map snd points) in
  let exp_curve =
    Array.map (Ic_stats.Ccdf.exponential ~rate:cmp.exp_fit.rate) xs
  in
  let logn_curve =
    Array.map
      (Ic_stats.Ccdf.lognormal ~mu:cmp.logn_fit.mu ~sigma:cmp.logn_fit.sigma)
      xs
  in
  let series =
    [
      Ic_report.Series_out.make_xy ~label:(name ^ "_ccdf_empirical") ~xs
        ~ys:emp;
      Ic_report.Series_out.make_xy ~label:(name ^ "_ccdf_exponential") ~xs
        ~ys:exp_curve;
      Ic_report.Series_out.make_xy ~label:(name ^ "_ccdf_lognormal") ~xs
        ~ys:logn_curve;
    ]
  in
  let summary =
    [
      Printf.sprintf
        "%s: lognormal MLE mu=%.2f sigma=%.2f; KS lognormal=%.3f vs \
         exponential=%.3f -> %s preferred"
        name cmp.logn_fit.mu cmp.logn_fit.sigma cmp.logn_ks cmp.exp_ks
        (if cmp.lognormal_preferred then "lognormal" else "exponential");
    ]
  in
  (series, summary)

let run ctx =
  let gs, gsum = dataset_part ctx Context.Geant in
  let ts, tsum = dataset_part ctx Context.Totem in
  {
    Outcome.id = "fig7";
    title = "CCDF of fitted preference values vs exponential/lognormal fits";
    paper_claim =
      "long-tailed; lognormal clearly better than exponential; MLE mu ~ \
       -4.3, sigma ~ 1.7 on both datasets";
    series = gs @ ts;
    summary = gsum @ tsum;
  }
