(** Shared experiment context: lazily generated datasets, bin subsampling
    and a cache of weekly model fits (several figures reuse the same
    fits). *)

type dataset_id = Geant | Totem

type t

val create :
  ?stride:int ->
  ?weeks_geant:int ->
  ?weeks_totem:int ->
  ?out_dir:string ->
  unit ->
  t
(** [stride] keeps every k-th bin of each week (default 1 = full
    resolution; the tests use larger strides for speed). Default weeks: 3
    for Géant, 7 for Totem, as in the paper. *)

val quick : unit -> t
(** Heavily subsampled context for tests and smoke runs. *)

val stride : t -> int

val out_dir : t -> string option

val geant : t -> Ic_datasets.Dataset.t

val totem : t -> Ic_datasets.Dataset.t

val dataset : t -> dataset_id -> Ic_datasets.Dataset.t

val abilene : t -> Ic_datasets.Abilene.t

val week_series : t -> dataset_id -> int -> Ic_traffic.Series.t
(** Subsampled series of one week. *)

val weekly_fit :
  t -> dataset_id -> int -> Ic_core.Params.stable_fp Ic_core.Fit.fitted
(** Cached stable-fP fit of one (subsampled) week. *)

val dataset_name : dataset_id -> string
