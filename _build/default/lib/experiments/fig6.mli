(** Figure 6: fitted preference vectors [{P_i}] per week, for 3 Géant weeks
    and 7 Totem weeks. The paper finds per-node values remarkably stable
    over time and highly variable across nodes (a few nodes up to ~10x the
    typical value). *)

val run : Context.t -> Outcome.t
