(** Figure 11: TM-estimation improvement over the gravity prior when all IC
    parameters are measured on the estimated week itself (the Section 6.1
    upper-bound scenario). The paper reports 10–20% (Géant) and 20–30%
    (Totem). *)

val run : Context.t -> Outcome.t
