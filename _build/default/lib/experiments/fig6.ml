let weekly_preferences ctx id weeks =
  List.init weeks (fun w -> (Context.weekly_fit ctx id w).params.preference)

let mean_pairwise_corr prefs =
  let rec pairs = function
    | [] | [ _ ] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let cs =
    List.map (fun (a, b) -> Ic_stats.Corr.pearson a b) (pairs prefs)
  in
  match cs with
  | [] -> 1.
  | _ -> List.fold_left ( +. ) 0. cs /. float_of_int (List.length cs)

let node_series prefs label =
  List.mapi
    (fun w p ->
      Ic_report.Series_out.make
        ~label:(Printf.sprintf "%s_wk%d_P" label (w + 1))
        p)
    prefs

let run ctx =
  let g_weeks = Ic_datasets.Dataset.week_count (Context.geant ctx) in
  let t_weeks = Ic_datasets.Dataset.week_count (Context.totem ctx) in
  let g = weekly_preferences ctx Context.Geant g_weeks in
  let t = weekly_preferences ctx Context.Totem t_weeks in
  let spread p =
    Ic_stats.Descriptive.max p /. Float.max (Ic_stats.Descriptive.median p) 1e-12
  in
  {
    Outcome.id = "fig6";
    title = "Fitted preference values per node across weeks";
    paper_claim =
      "P_i stable week to week (Geant 3 weeks, Totem 7 weeks); across nodes \
       highly variable, largest ~10x the typical value";
    series = node_series g "geant" @ node_series t "totem";
    summary =
      [
        Printf.sprintf "geant mean week-to-week corr(P): %.3f"
          (mean_pairwise_corr g);
        Printf.sprintf "totem mean week-to-week corr(P): %.3f"
          (mean_pairwise_corr t);
        Printf.sprintf "geant max/median preference: %.1fx"
          (spread (List.hd g));
        Printf.sprintf "totem max/median preference: %.1fx"
          (spread (List.hd t));
      ];
  }
