let dataset_part ctx id =
  let name = Context.dataset_name id in
  let week = Context.week_series ctx id 0 in
  let p = (Context.weekly_fit ctx id 0).params.preference in
  let tms =
    Array.init (Ic_traffic.Series.length week) (Ic_traffic.Series.tm week)
  in
  let shares = Ic_traffic.Marginals.mean_egress_shares tms in
  (* order nodes by egress share, as the paper's x-axis effectively does *)
  let n = Array.length p in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare shares.(a) shares.(b)) order;
  let p_ord = Array.map (fun i -> p.(i)) order in
  let s_ord = Array.map (fun i -> shares.(i)) order in
  let above_median_corr =
    let half = n / 2 in
    let p_top = Array.sub p_ord half (n - half) in
    let s_top = Array.sub s_ord half (n - half) in
    Ic_stats.Corr.spearman p_top s_top
  in
  let series =
    [
      Ic_report.Series_out.make ~label:(name ^ "_preference_sorted") p_ord;
      Ic_report.Series_out.make ~label:(name ^ "_egress_share_sorted") s_ord;
    ]
  in
  let summary =
    [
      Printf.sprintf
        "%s: spearman corr(P, egress share) overall %.2f; above-median \
         nodes only %.2f"
        name
        (Ic_stats.Corr.spearman p shares)
        above_median_corr;
    ]
  in
  (series, summary)

let run ctx =
  let gs, gsum = dataset_part ctx Context.Geant in
  let ts, tsum = dataset_part ctx Context.Totem in
  {
    Outcome.id = "fig8";
    title = "Preference values vs normalized mean egress counts";
    paper_claim =
      "egress volume is a poor indicator of preference: correlation weak \
       among above-median nodes, though small nodes have small preference";
    series = gs @ ts;
    summary = gsum @ tsum;
  }
