let all =
  [
    ("section3", Section3.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("asymmetry", Asymmetry.run);
    ("priors-panel", Priors_panel.run);
    ("eigenflows", Eigenflows.run);
    ("microscale", Microscale.run);
    ("ablation-ipf", Ablations.ipf);
    ("ablation-solver", Ablations.solver);
    ("ablation-entropy", Ablations.entropy);
    ("ablation-snmp", Ablations.snmp);
    ("ablation-stale-routing", Ablations.stale_routing);
    ("ablation-general-f", Ablations.general_f);
    ("ablation-optimizer", Ablations.optimizer);
    ("ablation-variants", Ablations.model_variants);
  ]

let find id = List.assoc_opt id all

let ids = List.map fst all
