let render ~header rows =
  let cols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Table.render: ragged row")
    rows;
  let all = header :: rows in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun c cell ->
         widths.(c) <- Stdlib.max widths.(c) (String.length cell)))
    all;
  let pad c cell = cell ^ String.make (widths.(c) - String.length cell) ' ' in
  let render_row r = String.concat "  " (List.mapi pad r) in
  let sep =
    String.concat "  "
      (List.init cols (fun c -> String.make widths.(c) '-'))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let render_floats ?(precision = 4) ~header rows =
  render ~header
    (List.map (List.map (Printf.sprintf "%.*g" precision)) rows)
