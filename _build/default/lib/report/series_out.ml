type t = { label : string; xs : float array; ys : float array }

let make ~label ys =
  { label; xs = Array.init (Array.length ys) float_of_int; ys }

let make_xy ~label ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Series_out.make_xy: length mismatch";
  { label; xs; ys }

let summary t =
  if Array.length t.ys = 0 then Printf.sprintf "%-28s (empty)" t.label
  else
    Printf.sprintf "%-28s %s  %s" t.label
      (Ic_stats.Descriptive.summary t.ys)
      (Sparkline.render_resampled ~width:48 t.ys)

let to_csv ~path series =
  match series with
  | [] -> invalid_arg "Series_out.to_csv: no series"
  | first :: _ ->
      List.iter
        (fun s ->
          if Array.length s.ys <> Array.length first.xs then
            invalid_arg "Series_out.to_csv: length mismatch across series")
        series;
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (String.concat "," ("x" :: List.map (fun s -> s.label) series));
          output_char oc '\n';
          Array.iteri
            (fun k x ->
              let cells =
                Printf.sprintf "%.17g" x
                :: List.map (fun s -> Printf.sprintf "%.17g" s.ys.(k)) series
              in
              output_string oc (String.concat "," cells);
              output_char oc '\n')
            first.xs)
