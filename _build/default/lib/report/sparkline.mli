(** One-line unicode sparklines, used to render time series (improvement
    curves, activity series) legibly in terminal reports. *)

val render : float array -> string
(** Scale the series into U+2581..U+2588 block characters. Empty input gives
    the empty string; a constant series renders at mid height. *)

val render_resampled : width:int -> float array -> string
(** Average-downsample to at most [width] characters first. *)
