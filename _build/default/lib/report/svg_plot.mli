(** Dependency-free SVG line charts, so `ic-lab experiment --out DIR` can
    regenerate the paper's figures as images next to the CSV series. *)

type axis = Linear | Log
(** Log axes drop non-positive points (used by the Figure 7 CCDFs). *)

type spec = {
  title : string;
  x_label : string;
  y_label : string;
  x_axis : axis;
  y_axis : axis;
  width : int;  (** pixels; default 720 in {!default_spec} *)
  height : int;
}

val default_spec : spec
(** Linear axes, 720x420, empty labels. *)

val render : spec -> Series_out.t list -> string
(** Render the series as an SVG document: one polyline per series with a
    color cycle, axes with tick labels, and a legend. Series may have
    different lengths. Raises [Invalid_argument] when no series contains a
    drawable point. *)

val write : path:string -> spec -> Series_out.t list -> unit
(** Write {!render}'s output to a file. *)
