type axis = Linear | Log

type spec = {
  title : string;
  x_label : string;
  y_label : string;
  x_axis : axis;
  y_axis : axis;
  width : int;
  height : int;
}

let default_spec =
  {
    title = "";
    x_label = "";
    y_label = "";
    x_axis = Linear;
    y_axis = Linear;
    width = 720;
    height = 420;
  }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#ff7f0e"; "#9467bd"; "#8c564b";
     "#17becf"; "#7f7f7f"; "#bcbd22"; "#e377c2" |]

let margin_left = 70

let margin_right = 20

let margin_top = 40

let margin_bottom = 55

(* points of one series that are drawable under the axis modes *)
let drawable spec (s : Series_out.t) =
  let ok axis v =
    Float.is_finite v && match axis with Log -> v > 0. | Linear -> true
  in
  let acc = ref [] in
  for k = Array.length s.xs - 1 downto 0 do
    if ok spec.x_axis s.xs.(k) && ok spec.y_axis s.ys.(k) then
      acc := (s.xs.(k), s.ys.(k)) :: !acc
  done;
  !acc

let transform axis v = match axis with Linear -> v | Log -> log10 v

(* "nice" tick positions over [lo, hi] in transformed space *)
let ticks axis lo hi =
  match axis with
  | Log ->
      let first = int_of_float (Float.ceil lo) in
      let last = int_of_float (Float.floor hi) in
      if last < first then [ lo; hi ]
      else List.init (last - first + 1) (fun k -> float_of_int (first + k))
  | Linear ->
      if hi <= lo then [ lo ]
      else begin
        let span = hi -. lo in
        let raw_step = span /. 5. in
        let mag = 10. ** Float.floor (log10 raw_step) in
        let norm = raw_step /. mag in
        let step =
          mag *. (if norm < 1.5 then 1. else if norm < 3.5 then 2. else if norm < 7.5 then 5. else 10.)
        in
        let first = Float.ceil (lo /. step) *. step in
        let rec collect v acc =
          if v > hi +. (step /. 2.) then List.rev acc
          else collect (v +. step) (v :: acc)
        in
        collect first []
      end

let tick_label axis v =
  match axis with
  | Log -> Printf.sprintf "1e%g" v
  | Linear ->
      if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && v <> 0.) then
        Printf.sprintf "%.1e" v
      else Printf.sprintf "%g" v

let render spec series =
  let all_points = List.map (fun s -> (s, drawable spec s)) series in
  let points = List.concat_map snd all_points in
  if points = [] then invalid_arg "Svg_plot.render: nothing to draw";
  let tx = transform spec.x_axis and ty = transform spec.y_axis in
  let xs = List.map (fun (x, _) -> tx x) points in
  let ys = List.map (fun (_, y) -> ty y) points in
  let min_l = List.fold_left Float.min infinity in
  let max_l = List.fold_left Float.max neg_infinity in
  let pad lo hi = if hi > lo then (lo, hi) else (lo -. 1., hi +. 1.) in
  let x_lo, x_hi = pad (min_l xs) (max_l xs) in
  let y_lo, y_hi = pad (min_l ys) (max_l ys) in
  let plot_w = spec.width - margin_left - margin_right in
  let plot_h = spec.height - margin_top - margin_bottom in
  let px x =
    float_of_int margin_left
    +. ((tx x -. x_lo) /. (x_hi -. x_lo) *. float_of_int plot_w)
  in
  let py y =
    float_of_int (margin_top + plot_h)
    -. ((ty y -. y_lo) /. (y_hi -. y_lo) *. float_of_int plot_h)
  in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
    spec.width spec.height spec.width spec.height;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" spec.width
    spec.height;
  (* frame *)
  out
    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
     stroke=\"#333\" stroke-width=\"1\"/>\n"
    margin_left margin_top plot_w plot_h;
  (* title and axis labels *)
  if spec.title <> "" then
    out
      "<text x=\"%d\" y=\"24\" text-anchor=\"middle\" font-size=\"15\">%s</text>\n"
      (spec.width / 2) spec.title;
  if spec.x_label <> "" then
    out
      "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" font-size=\"12\">%s</text>\n"
      (margin_left + (plot_w / 2))
      (spec.height - 12) spec.x_label;
  if spec.y_label <> "" then
    out
      "<text x=\"16\" y=\"%d\" text-anchor=\"middle\" font-size=\"12\" \
       transform=\"rotate(-90 16 %d)\">%s</text>\n"
      (margin_top + (plot_h / 2))
      (margin_top + (plot_h / 2))
      spec.y_label;
  (* ticks and gridlines (positions computed in transformed space) *)
  List.iter
    (fun tick ->
      let x =
        float_of_int margin_left
        +. ((tick -. x_lo) /. (x_hi -. x_lo) *. float_of_int plot_w)
      in
      out
        "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ddd\"/>\n"
        x margin_top x (margin_top + plot_h);
      out
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" \
         font-size=\"11\">%s</text>\n"
        x
        (margin_top + plot_h + 16)
        (tick_label spec.x_axis tick))
    (ticks spec.x_axis x_lo x_hi);
  List.iter
    (fun tick ->
      let y =
        float_of_int (margin_top + plot_h)
        -. ((tick -. y_lo) /. (y_hi -. y_lo) *. float_of_int plot_h)
      in
      out
        "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
        margin_left y (margin_left + plot_w) y;
      out
        "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" font-size=\"11\">%s</text>\n"
        (margin_left - 6) (y +. 4.)
        (tick_label spec.y_axis tick))
    (ticks spec.y_axis y_lo y_hi);
  (* series *)
  List.iteri
    (fun idx ((s : Series_out.t), pts) ->
      let color = palette.(idx mod Array.length palette) in
      if pts <> [] then begin
        let path =
          String.concat " "
            (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) pts)
        in
        out
          "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
           stroke-width=\"1.5\"/>\n"
          path color
      end;
      (* legend entry *)
      let ly = margin_top + 8 + (idx * 16) in
      out
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
         stroke-width=\"2\"/>\n"
        (margin_left + plot_w - 150)
        ly
        (margin_left + plot_w - 130)
        ly color;
      out "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n"
        (margin_left + plot_w - 124)
        (ly + 4) s.label)
    all_points;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ~path spec series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render spec series))
