(** Plain-text tables for experiment reports. *)

val render : header:string list -> string list list -> string
(** Column-aligned rendering with a separator row under the header. Raises
    [Invalid_argument] on ragged rows. *)

val render_floats :
  ?precision:int -> header:string list -> float list list -> string
(** Numeric rows formatted with [%.*g] (default precision 4). *)
