(** Uniform packaging of experiment outputs: named series that can be
    summarized to the terminal and dumped to CSV. *)

type t = { label : string; xs : float array; ys : float array }

val make : label:string -> float array -> t
(** Series indexed by position (xs = 0,1,2,...). *)

val make_xy : label:string -> xs:float array -> ys:float array -> t
(** Raises [Invalid_argument] on length mismatch. *)

val summary : t -> string
(** Label, basic statistics and a sparkline. *)

val to_csv : path:string -> t list -> unit
(** All series share the x column of the first (they must be the same
    length); columns are [x, label1, label2, ...]. *)
