lib/report/sparkline.ml: Array Buffer Float Stdlib
