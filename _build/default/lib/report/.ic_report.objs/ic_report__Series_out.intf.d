lib/report/series_out.mli:
