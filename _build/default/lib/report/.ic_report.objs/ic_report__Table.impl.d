lib/report/table.ml: Array List Printf Stdlib String
