lib/report/svg_plot.mli: Series_out
