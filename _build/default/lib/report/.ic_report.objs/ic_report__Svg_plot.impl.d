lib/report/svg_plot.ml: Array Buffer Float Fun List Printf Series_out String
