lib/report/table.mli:
