lib/report/sparkline.mli:
