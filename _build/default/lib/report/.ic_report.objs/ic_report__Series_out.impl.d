lib/report/series_out.ml: Array Fun Ic_stats List Printf Sparkline String
