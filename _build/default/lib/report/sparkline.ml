let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let render xs =
  if Array.length xs = 0 then ""
  else begin
    let lo = Array.fold_left Float.min xs.(0) xs in
    let hi = Array.fold_left Float.max xs.(0) xs in
    let buf = Buffer.create (Array.length xs * 3) in
    Array.iter
      (fun x ->
        let level =
          if hi > lo then
            int_of_float ((x -. lo) /. (hi -. lo) *. 7.99)
          else 3
        in
        Buffer.add_string buf blocks.(Stdlib.max 0 (Stdlib.min 7 level)))
      xs;
    Buffer.contents buf
  end

let render_resampled ~width xs =
  if width <= 0 then invalid_arg "Sparkline.render_resampled: bad width";
  let n = Array.length xs in
  if n <= width then render xs
  else begin
    let out = Array.make width 0. in
    for k = 0 to width - 1 do
      let lo = k * n / width and hi = Stdlib.max ((k + 1) * n / width) ((k * n / width) + 1) in
      let acc = ref 0. in
      for i = lo to hi - 1 do
        acc := !acc +. xs.(i)
      done;
      out.(k) <- !acc /. float_of_int (hi - lo)
    done;
    render out
  end
