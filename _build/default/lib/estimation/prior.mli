(** Prior construction — Step 1 of the estimation blueprint — for each of the
    paper's Section 6 scenarios. Every builder consumes only measurements
    that the scenario assumes available. *)

val gravity : Ic_traffic.Series.t -> Ic_traffic.Series.t
(** Baseline prior from per-bin ingress/egress counts only. *)

val fanout :
  calibration:Ic_traffic.Series.t ->
  Ic_traffic.Series.t ->
  Ic_traffic.Series.t
(** The PoP-fanout prior of Medina et al. (the paper's reference [11]):
    per-origin destination shares [F_ij = mean_t X_ij(t) / X_i.(t)] are
    learned on a calibration week and applied to the target week's ingress
    counts, [Xhat_ij(t) = X_i.(t) * F_ij]. Uses the target week only
    through its ingress marginals. Raises [Invalid_argument] on size
    mismatch. *)

val ic_measured :
  Ic_core.Params.stable_fp -> Ic_timeseries.Timebin.t -> Ic_traffic.Series.t
(** Section 6.1: all IC parameters (f, P, per-bin A) measured directly —
    the upper-bound scenario. The prior is the model evaluation itself. *)

val ic_stable_fp :
  f:float ->
  preference:Ic_linalg.Vec.t ->
  Ic_traffic.Series.t ->
  Ic_traffic.Series.t
(** Section 6.2: [f] and [P] calibrated on an earlier week; activities
    estimated per bin from the current week's ingress/egress counts
    (Equations 7–9). *)

val ic_stable_f : f:float -> Ic_traffic.Series.t -> Ic_traffic.Series.t
(** Section 6.3: only [f] known; both activities and preferences recovered
    per bin from the marginals in closed form (Equations 11–12). Raises
    [Invalid_argument] if [f] is within 1e-6 of 1/2. *)
