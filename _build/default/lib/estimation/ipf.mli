(** Iterative proportional fitting — Step 3 of the TM-estimation blueprint in
    paper Section 6: rescale an estimated TM so its row and column sums match
    the measured ingress and egress counts while staying non-negative. *)

type outcome = {
  tm : Ic_traffic.Tm.t;
  iterations : int;
  max_marginal_error : float;
      (** largest relative row/column-sum mismatch at termination *)
}

val fit :
  ?max_iter:int ->
  ?tol:float ->
  Ic_traffic.Tm.t ->
  row_targets:Ic_linalg.Vec.t ->
  col_targets:Ic_linalg.Vec.t ->
  outcome
(** [fit tm ~row_targets ~col_targets] alternates row and column scalings
    (default 200 iterations, relative tolerance 1e-9). The column targets
    are rescaled to the row-target total (measurements are never exactly
    consistent). Rows or columns with a positive target but no mass are
    seeded uniformly so IPF can converge. Raises [Invalid_argument] on
    dimension mismatch or negative targets. *)
