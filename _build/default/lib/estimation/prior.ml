let gravity series = Ic_gravity.Gravity.of_series series

let fanout ~calibration target =
  let n = Ic_traffic.Series.size calibration in
  if Ic_traffic.Series.size target <> n then
    invalid_arg "Prior.fanout: size mismatch";
  (* mean destination share per origin over the calibration week *)
  let shares = Ic_linalg.Mat.create n n in
  let counts = Array.make n 0 in
  for t = 0 to Ic_traffic.Series.length calibration - 1 do
    let tm = Ic_traffic.Series.tm calibration t in
    let ingress = Ic_traffic.Marginals.ingress tm in
    for i = 0 to n - 1 do
      if ingress.(i) > 0. then begin
        counts.(i) <- counts.(i) + 1;
        for j = 0 to n - 1 do
          Ic_linalg.Mat.update shares i j (fun v ->
              v +. (Ic_traffic.Tm.get tm i j /. ingress.(i)))
        done
      end
    done
  done;
  for i = 0 to n - 1 do
    if counts.(i) > 0 then
      for j = 0 to n - 1 do
        Ic_linalg.Mat.update shares i j (fun v ->
            v /. float_of_int counts.(i))
      done
    else
      (* an origin never seen active: fall back to uniform fanout *)
      for j = 0 to n - 1 do
        Ic_linalg.Mat.set shares i j (1. /. float_of_int n)
      done
  done;
  let tms =
    Array.init (Ic_traffic.Series.length target) (fun t ->
        let ingress =
          Ic_traffic.Marginals.ingress (Ic_traffic.Series.tm target t)
        in
        Ic_traffic.Tm.init n (fun i j ->
            Float.max 0. (ingress.(i) *. Ic_linalg.Mat.get shares i j)))
  in
  Ic_traffic.Series.make target.Ic_traffic.Series.binning tms

let ic_measured params binning = Ic_core.Model.stable_fp params binning

let ic_stable_fp ~f ~preference series =
  Ic_core.Estimate_a.prior_series ~f ~preference series

let ic_stable_f ~f series = Ic_core.Closed_form.prior_series ~f series
