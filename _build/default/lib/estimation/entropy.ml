module Vec = Ic_linalg.Vec
module Sparse = Ic_linalg.Sparse
module Routing = Ic_topology.Routing

type options = { max_newton : int; tol : float }

let default_options = { max_newton = 30; tol = 1e-8 }

(* x(lambda)_s = prior_s * exp((Rt lambda)_s), with the exponent clamped for
   floating-point safety. *)
let primal prior_vec exponent =
  Array.mapi
    (fun s p ->
      if p <= 0. then 0.
      else p *. exp (Ic_linalg.Proj.box ~lo:(-30.) ~hi:30. exponent.(s)))
    prior_vec

let estimate ?(options = default_options) ?plan routing ~link_loads ~prior =
  let r = routing.Routing.matrix in
  let m = Sparse.rows r in
  if Array.length link_loads <> m then
    invalid_arg "Entropy.estimate: link-load dimension mismatch";
  let n = Ic_traffic.Tm.size prior in
  if n * n <> Sparse.cols r then
    invalid_arg "Entropy.estimate: prior does not match routing matrix";
  (* With a plan, each Newton system reuses the plan's Gram buffers and this
     factor buffer instead of allocating; the arithmetic is unchanged. *)
  let factor_buf =
    match plan with None -> None | Some _ -> Some (Ic_linalg.Mat.create m m)
  in
  let newton_solve weights rhs =
    match (plan, factor_buf) with
    | Some plan, Some l ->
        let g = Tomogravity.plan_weighted_gram plan weights in
        let ch = Ic_linalg.Chol.factorize_ridge_into ~ridge:1e-9 ~l g in
        let delta = Vec.copy rhs in
        Ic_linalg.Chol.solve_into ch delta;
        delta
    | _ ->
        let g = Tomogravity.weighted_gram routing weights in
        let ch = Ic_linalg.Chol.factorize_ridge ~ridge:1e-9 g in
        Ic_linalg.Chol.solve ch rhs
  in
  let prior_vec = Vec.clamp_nonneg (Ic_traffic.Tm.to_vector prior) in
  let ynorm = Float.max (Vec.nrm2 link_loads) 1e-12 in
  let lambda = ref (Vec.create m) in
  let x = ref (primal prior_vec (Sparse.mulv_t r !lambda)) in
  let resid v = Vec.nrm2_diff (Sparse.mulv r v) link_loads /. ynorm in
  let best = ref !x in
  let best_resid = ref (resid !x) in
  let iter = ref 0 in
  let continue_ = ref (!best_resid > options.tol) in
  while !continue_ && !iter < options.max_newton do
    incr iter;
    (* Newton system: (R diag(x) Rt) delta = Y - R x *)
    let weights = !x in
    let rhs = Vec.sub link_loads (Sparse.mulv r weights) in
    let delta = newton_solve weights rhs in
    (* damped line search on the link residual *)
    let rec try_step step tries =
      if tries = 0 then None
      else begin
        let candidate = Array.copy !lambda in
        Vec.axpy step delta candidate;
        let xc = primal prior_vec (Sparse.mulv_t r candidate) in
        let rc = resid xc in
        if rc < !best_resid then Some (candidate, xc, rc)
        else try_step (step /. 2.) (tries - 1)
      end
    in
    match try_step 1. 12 with
    | Some (candidate, xc, rc) ->
        lambda := candidate;
        x := xc;
        best := xc;
        best_resid := rc;
        if rc <= options.tol then continue_ := false
    | None -> continue_ := false
  done;
  Ic_traffic.Tm.of_vector_clamped n !best

let residual routing ~link_loads tm =
  Tomogravity.residual routing ~link_loads tm
