lib/estimation/entropy.mli: Ic_linalg Ic_topology Ic_traffic Tomogravity
