lib/estimation/ipf.mli: Ic_linalg Ic_traffic
