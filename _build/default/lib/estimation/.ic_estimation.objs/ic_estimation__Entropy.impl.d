lib/estimation/entropy.ml: Array Float Ic_linalg Ic_topology Ic_traffic Tomogravity
