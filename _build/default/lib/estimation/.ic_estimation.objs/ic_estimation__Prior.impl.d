lib/estimation/prior.ml: Array Float Ic_core Ic_gravity Ic_linalg Ic_traffic
