lib/estimation/pipeline.ml: Array Entropy Ic_linalg Ic_parallel Ic_topology Ic_traffic Ipf Logs Tomogravity
