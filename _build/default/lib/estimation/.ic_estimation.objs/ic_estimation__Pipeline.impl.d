lib/estimation/pipeline.ml: Array Entropy Ic_linalg Ic_topology Ic_traffic Ipf Logs Tomogravity
