lib/estimation/tomogravity.mli: Ic_linalg Ic_topology Ic_traffic
