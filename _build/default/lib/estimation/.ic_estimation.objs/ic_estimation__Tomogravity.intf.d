lib/estimation/tomogravity.mli: Ic_linalg Ic_parallel Ic_topology Ic_traffic
