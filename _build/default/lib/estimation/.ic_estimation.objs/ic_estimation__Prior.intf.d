lib/estimation/prior.mli: Ic_core Ic_linalg Ic_timeseries Ic_traffic
