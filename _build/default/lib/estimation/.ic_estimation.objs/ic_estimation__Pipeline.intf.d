lib/estimation/pipeline.mli: Ic_linalg Ic_topology Ic_traffic Tomogravity
