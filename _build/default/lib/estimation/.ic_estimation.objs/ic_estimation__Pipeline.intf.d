lib/estimation/pipeline.mli: Ic_linalg Ic_parallel Ic_topology Ic_traffic Tomogravity
