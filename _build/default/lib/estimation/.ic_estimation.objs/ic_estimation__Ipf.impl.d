lib/estimation/ipf.ml: Array Float Ic_linalg Ic_traffic
