lib/estimation/tomogravity.ml: Array Float Ic_linalg Ic_parallel Ic_topology Ic_traffic List
