(** Maximum-entropy TM refinement (Zhang, Roughan, Lund, Donoho — the
    paper's reference [23]): among all traffic matrices satisfying the link
    constraints, pick the one closest to the prior in Kullback–Leibler
    divergence,

    [min KL(x || prior)  s.t.  R x = Y,  x >= 0].

    The solution has the exponential-family form
    [x_s = prior_s * exp((Rᵀ lambda)_s)]; the dual is smooth and concave
    and is maximized by damped Newton iterations whose inner systems
    [R diag(x) Rᵀ] are exactly the tomogravity normal equations.

    Implemented as the second Step-2 option of the estimation pipeline —
    the paper frames the gravity model as the maximum-entropy prior under
    packet-level independence, so replacing it with an IC prior inside the
    same MaxEnt machinery is the natural comparison. *)

type options = {
  max_newton : int;  (** Newton iterations (default 30) *)
  tol : float;  (** relative link-residual target (default 1e-8) *)
}

val default_options : options

val estimate :
  ?options:options ->
  ?plan:Tomogravity.plan ->
  Ic_topology.Routing.t ->
  link_loads:Ic_linalg.Vec.t ->
  prior:Ic_traffic.Tm.t ->
  Ic_traffic.Tm.t
(** One bin. Entries with zero prior stay zero (KL support). Infeasible or
    ill-scaled constraints degrade gracefully: the iteration stops at the
    best damped step and the result is always non-negative. Raises
    [Invalid_argument] on dimension mismatches.

    [?plan] must be a {!Tomogravity.make_plan} of the same [routing]; when
    given, the Newton systems are assembled and factorized through the
    plan's preallocated buffers (bit-identical results, no per-iteration
    allocation). *)

val residual :
  Ic_topology.Routing.t ->
  link_loads:Ic_linalg.Vec.t ->
  Ic_traffic.Tm.t ->
  float
(** Relative link-constraint violation (same diagnostic as
    {!Tomogravity.residual}). *)
