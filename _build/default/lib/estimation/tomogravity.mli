(** The tomogravity least-squares refinement step (Zhang, Roughan, Duffield,
    Greenberg, SIGMETRICS 2003) — Step 2 of the estimation blueprint.

    Given link counts [Y = R x] and a prior [x0], find the TM closest to the
    prior in prior-weighted least squares subject to the link constraints:

    [min || W^(-1/2) (x - x0) ||  s.t.  R x = Y],   [W = diag x0]

    whose solution is [x = x0 + W Rt u] with [(R W Rt) u = Y - R x0]. The
    normal system is solved either by ridge-regularized Cholesky (dense,
    default — exact for the network sizes at hand) or by conjugate gradient
    on the sparse operator (for the ablation and larger networks). The
    result is clamped to be non-negative. *)

type solver = Cholesky | Cg

val weighted_gram :
  Ic_topology.Routing.t -> Ic_linalg.Vec.t -> Ic_linalg.Mat.t
(** [weighted_gram routing w] is the dense [R diag(w) Rᵀ] — the normal
    system of both this module's least-squares step and {!Entropy}'s Newton
    iterations. *)

val estimate :
  ?solver:solver ->
  Ic_topology.Routing.t ->
  link_loads:Ic_linalg.Vec.t ->
  prior:Ic_traffic.Tm.t ->
  Ic_traffic.Tm.t
(** One bin. [link_loads] must have one entry per routing-matrix row.
    Raises [Invalid_argument] on dimension mismatches. *)

val residual :
  Ic_topology.Routing.t ->
  link_loads:Ic_linalg.Vec.t ->
  Ic_traffic.Tm.t ->
  float
(** Relative link-constraint violation [||R x - Y|| / ||Y||] of an estimate
    (diagnostic; the non-negativity clamp can leave a small residual). *)
