module Vec = Ic_linalg.Vec
module Mat = Ic_linalg.Mat
module Sparse = Ic_linalg.Sparse
module Routing = Ic_topology.Routing

type solver = Cholesky | Cg

(* Dense G = R W Rt accumulated column-by-column of R: column c with entries
   {(i, v)} contributes w_c * v_i * v_j to G[i][j]. Columns are sparse (a
   few hops plus the two marginal rows), so this is cheap. *)
let weighted_gram routing weights =
  let r = routing.Routing.matrix in
  let m = Sparse.rows r in
  let rt = Sparse.transpose r in
  let g = Mat.create m m in
  for c = 0 to Sparse.rows rt - 1 do
    let w = weights.(c) in
    if w > 0. then begin
      let entries = ref [] in
      Sparse.row_iter rt c (fun i v -> entries := (i, v) :: !entries);
      List.iter
        (fun (i1, v1) ->
          List.iter
            (fun (i2, v2) -> Mat.update g i1 i2 (fun x -> x +. (w *. v1 *. v2)))
            !entries)
        !entries
    end
  done;
  g

let estimate ?(solver = Cholesky) routing ~link_loads ~prior =
  let r = routing.Routing.matrix in
  let m = Sparse.rows r in
  if Array.length link_loads <> m then
    invalid_arg "Tomogravity.estimate: link-load dimension mismatch";
  let n = Ic_traffic.Tm.size prior in
  if n * n <> Sparse.cols r then
    invalid_arg "Tomogravity.estimate: prior does not match routing matrix";
  let x0 = Ic_traffic.Tm.to_vector prior in
  let weights = Vec.clamp_nonneg x0 in
  let rhs = Vec.sub link_loads (Sparse.mulv r x0) in
  let ynorm = Vec.nrm2 link_loads in
  if Vec.nrm2 rhs <= 1e-12 *. Float.max ynorm 1. then prior
  else begin
    let u =
      match solver with
      | Cholesky ->
          let g = weighted_gram routing weights in
          let ch = Ic_linalg.Chol.factorize_ridge ~ridge:1e-10 g in
          Ic_linalg.Chol.solve ch rhs
      | Cg ->
          let apply v =
            Sparse.mulv r (Vec.mul weights (Sparse.mulv_t r v))
          in
          let u, _stats = Ic_linalg.Cg.solve ~tol:1e-10 apply rhs in
          u
    in
    let correction = Vec.mul weights (Sparse.mulv_t r u) in
    Ic_traffic.Tm.of_vector n (Vec.add x0 correction)
  end

let residual routing ~link_loads tm =
  let r = routing.Routing.matrix in
  let y = Sparse.mulv r (Ic_traffic.Tm.to_vector tm) in
  let ynorm = Vec.nrm2 link_loads in
  if ynorm <= 0. then invalid_arg "Tomogravity.residual: zero link loads";
  Vec.nrm2_diff y link_loads /. ynorm
