(** In-process counters and per-stage timing histograms for the streaming
    engine.

    Counters are deterministic functions of the observation stream (poll
    counts, degradations, clamped entries, ...) and round-trip through
    checkpoints. Timings are wall-clock and therefore {e not} part of the
    engine's determinism contract: they are kept out of checkpoints and the
    dump prints them after the counters so deterministic consumers (cram
    tests) can truncate.

    The clock is injectable so tests can drive the histograms
    deterministically. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh telemetry sink. [clock] returns seconds (monotonicity is the
    caller's concern); the default is [Sys.time]. *)

val incr : t -> string -> unit
(** Add 1 to a named counter (created at 0 on first use). *)

val add : t -> string -> int -> unit

val count : t -> string -> int
(** Current value of a counter; 0 if never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val set_counters : t -> (string * int) list -> unit
(** Replace all counters — checkpoint restore. Timings are left empty. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t stage f] runs [f] and records its duration in [stage]'s
    histogram (power-of-two buckets in nanoseconds). *)

type timing = {
  stage : string;
  events : int;
  total_ns : float;
  max_ns : float;
  buckets : (int * int) list;
      (** (log2 nanosecond bucket, event count), sparse, ascending *)
}

val timings : t -> timing list
(** Per-stage timing summaries, sorted by stage name. *)

val dump : ?with_timings:bool -> t -> string
(** Human-readable dump: counters first (deterministic), then — when
    [with_timings] (default [true]) — the timing histograms. *)
