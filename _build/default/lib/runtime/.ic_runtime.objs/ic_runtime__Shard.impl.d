lib/runtime/shard.ml: Array Buffer Checkpoint Degrade Engine Feed Hashtbl Ic_parallel Ic_traffic List Printf Replay String Sys Telemetry
