lib/runtime/engine.mli: Degrade Ic_linalg Ic_timeseries Ic_topology Ic_traffic Telemetry
