lib/runtime/replay.mli: Degrade Engine Feed Ic_traffic
