lib/runtime/feed.ml: Array Float Ic_linalg Ic_prng Ic_topology Ic_traffic
