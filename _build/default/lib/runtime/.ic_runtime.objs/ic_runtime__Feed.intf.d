lib/runtime/feed.mli: Ic_linalg Ic_topology Ic_traffic
