lib/runtime/checkpoint.ml: Array Buffer Degrade Engine Ic_traffic Int64 List Printf String Sys
