lib/runtime/degrade.mli:
