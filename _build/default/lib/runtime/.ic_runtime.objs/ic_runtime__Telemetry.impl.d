lib/runtime/telemetry.ml: Array Buffer Float Hashtbl List Printf Stdlib Sys
