lib/runtime/shard.mli: Engine Feed Ic_parallel Replay
