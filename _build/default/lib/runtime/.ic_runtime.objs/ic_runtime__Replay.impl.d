lib/runtime/replay.ml: Array Degrade Engine Feed Ic_traffic Int64 List
