lib/runtime/engine.ml: Array Degrade Float Ic_core Ic_estimation Ic_gravity Ic_linalg Ic_timeseries Ic_topology Ic_traffic Option Telemetry
