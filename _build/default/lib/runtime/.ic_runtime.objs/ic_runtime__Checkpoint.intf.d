lib/runtime/checkpoint.mli: Engine
