lib/runtime/degrade.ml: List Printf
