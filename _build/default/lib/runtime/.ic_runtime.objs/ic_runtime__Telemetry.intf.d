lib/runtime/telemetry.mli:
