(** Drive an {!Engine} over a {!Feed} — the serving loop of
    [ic-lab stream], reusable from benches and tests. *)

type result = {
  estimates : Ic_traffic.Tm.t array;  (** one per consumed bin *)
  levels : Degrade.level array;  (** prior rung used per bin *)
  clamped : int;  (** total clamped entries across the run *)
}

val run :
  ?max_bins:int ->
  ?on_bin:(bin:int -> Engine.output -> unit) ->
  Engine.t ->
  Feed.t ->
  result
(** Step the engine over the feed from its current position until the feed
    is exhausted (or [max_bins] consumed). [on_bin] observes each bin as it
    completes. *)

val bit_identical : Ic_traffic.Tm.t array -> Ic_traffic.Tm.t array -> bool
(** Exact (float bit pattern) equality of two estimate runs — the
    resume-equals-uninterrupted acceptance check. *)
