(** A live observation feed for the engine: replay a TM series as the
    sequence of link-load polls an operator's collector would deliver,
    with injected faults.

    Per bin the true loads [Y = R x(t)] go through an
    {!Ic_topology.Snmp.stream} (per-poll noise, dropped polls), then the
    corruptor flips surviving polls to garbage (a strictly negative value,
    the way a wrapped or torn counter read manifests) with probability
    [corrupt_rate]. Dropped polls are reported in the [missing] flags;
    corrupt polls are {e not} — detecting them is the engine's job.

    The feed is deterministic from its seed, and a fresh feed with the same
    inputs replays the identical stream — which is how a resumed engine is
    fed the exact observations it would have seen had it never died. *)

type t

val create :
  ?noise_sigma:float ->
  ?drop_rate:float ->
  ?corrupt_rate:float ->
  Ic_topology.Routing.t ->
  Ic_traffic.Series.t ->
  seed:int ->
  t
(** Defaults: 1% noise, no drops, no corruption. Raises [Invalid_argument]
    on rates out of range or a series that does not match the routing. *)

val length : t -> int
(** Total bins in the replay. *)

val position : t -> int
(** Index of the next bin to be delivered. *)

val next : t -> (Ic_linalg.Vec.t * bool array) option
(** The next bin's observation: measured loads (one per routing row) and
    the dropped-poll flags. [None] when the replay is exhausted. *)

val skip : t -> int -> unit
(** [skip t k] advances past [k] bins, drawing and discarding their
    observations so the stream state stays identical to a feed that
    delivered them — fast-forward for resume-after-kill. *)
