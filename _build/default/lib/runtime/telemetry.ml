type hist = {
  mutable events : int;
  mutable total_ns : float;
  mutable max_ns : float;
  bucket_counts : int array;  (* index = log2(ns), clamped to [0, 62] *)
}

type t = {
  clock : unit -> float;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create ?(clock = Sys.time) () =
  { clock; counters = Hashtbl.create 32; hists = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name v =
  let r = counter_ref t name in
  r := !r + v

let count t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

let set_counters t entries =
  Hashtbl.reset t.counters;
  List.iter (fun (name, v) -> Hashtbl.replace t.counters name (ref v)) entries

let bucket_of_ns ns =
  if ns < 1. then 0
  else min 62 (int_of_float (Float.log2 ns))

let hist t stage =
  match Hashtbl.find_opt t.hists stage with
  | Some h -> h
  | None ->
      let h =
        { events = 0; total_ns = 0.; max_ns = 0.; bucket_counts = Array.make 63 0 }
      in
      Hashtbl.add t.hists stage h;
      h

let record_ns t stage ns =
  let ns = Float.max ns 0. in
  let h = hist t stage in
  h.events <- h.events + 1;
  h.total_ns <- h.total_ns +. ns;
  h.max_ns <- Float.max h.max_ns ns;
  let b = bucket_of_ns ns in
  h.bucket_counts.(b) <- h.bucket_counts.(b) + 1

let time t stage f =
  let t0 = t.clock () in
  let result = f () in
  let t1 = t.clock () in
  record_ns t stage ((t1 -. t0) *. 1e9);
  result

type timing = {
  stage : string;
  events : int;
  total_ns : float;
  max_ns : float;
  buckets : (int * int) list;
}

let timings t =
  Hashtbl.fold
    (fun stage h acc ->
      let buckets = ref [] in
      for b = 62 downto 0 do
        if h.bucket_counts.(b) > 0 then
          buckets := (b, h.bucket_counts.(b)) :: !buckets
      done;
      {
        stage;
        events = h.events;
        total_ns = h.total_ns;
        max_ns = h.max_ns;
        buckets = !buckets;
      }
      :: acc)
    t.hists []
  |> List.sort (fun a b -> compare a.stage b.stage)

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let merged sinks =
  let totals = Hashtbl.create 64 in
  List.iter
    (fun (_, t) ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt totals name with
          | Some r -> r := !r + v
          | None -> Hashtbl.add totals name (ref v))
        (counters t))
    sinks;
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) totals []
  |> List.sort compare

let merged_dump sinks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "merged counters:\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v))
    (merged sinks);
  List.iter
    (fun (label, t) ->
      Buffer.add_string buf (Printf.sprintf "shard %s:\n" label);
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v))
        (counters t))
    (List.sort (fun (a, _) (b, _) -> compare a b) sinks);
  Buffer.contents buf

let dump ?(with_timings = true) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" name v))
    (counters t);
  if with_timings then begin
    Buffer.add_string buf "timings:\n";
    List.iter
      (fun tm ->
        let mean = if tm.events = 0 then 0. else tm.total_ns /. float_of_int tm.events in
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %6d events  mean %8s  max %8s  " tm.stage
             tm.events (pretty_ns mean) (pretty_ns tm.max_ns));
        List.iter
          (fun (b, c) ->
            Buffer.add_string buf (Printf.sprintf "2^%d:%d " b c))
          tm.buckets;
        Buffer.add_char buf '\n')
      (timings t)
  end;
  Buffer.contents buf
