module Vec = Ic_linalg.Vec
module Routing = Ic_topology.Routing
module Snmp = Ic_topology.Snmp
module Series = Ic_traffic.Series

type t = {
  loads : Vec.t array;  (* true per-bin link loads, precomputed *)
  snmp : Snmp.stream;
  corrupt_rate : float;
  fault_rng : Ic_prng.Rng.t;
  mutable pos : int;
}

let create ?(noise_sigma = 0.01) ?(drop_rate = 0.) ?(corrupt_rate = 0.)
    routing series ~seed =
  if corrupt_rate < 0. || corrupt_rate >= 1. then
    invalid_arg "Feed.create: corrupt rate out of [0,1)";
  let g = routing.Routing.graph in
  if Series.size series <> Ic_topology.Graph.node_count g then
    invalid_arg "Feed.create: series does not match routing";
  let loads =
    Array.init (Series.length series) (fun k ->
        Routing.link_loads routing
          (Ic_traffic.Tm.to_vector (Series.tm series k)))
  in
  let rng = Ic_prng.Rng.create seed in
  let snmp_rng = Ic_prng.Rng.fork rng in
  {
    loads;
    snmp = Snmp.stream { noise_sigma; loss_rate = drop_rate } snmp_rng;
    corrupt_rate;
    fault_rng = Ic_prng.Rng.fork rng;
    pos = 0;
  }

let length t = Array.length t.loads

let position t = t.pos

let next t =
  if t.pos >= Array.length t.loads then None
  else begin
    let { Snmp.values; missing } = Snmp.poll t.snmp t.loads.(t.pos) in
    t.pos <- t.pos + 1;
    if t.corrupt_rate > 0. then
      for e = 0 to Array.length values - 1 do
        if
          (not missing.(e))
          && Ic_prng.Rng.float t.fault_rng < t.corrupt_rate
        then
          (* A corrupt counter read: strictly negative, detectably bogus. *)
          values.(e) <- -.(Float.abs values.(e)) -. 1.
      done;
    Some (values, missing)
  end

let skip t k =
  for _ = 1 to k do
    ignore (next t)
  done
