type spec = {
  nodes : int;
  binning : Ic_timeseries.Timebin.t;
  bins : int;
  mean_total_bytes : float;
  diurnal : Ic_timeseries.Diurnal.t;
  weekend_damping : float;
}

let default_spec =
  {
    nodes = 22;
    binning = Ic_timeseries.Timebin.five_min;
    bins = Ic_timeseries.Timebin.bins_per_week Ic_timeseries.Timebin.five_min;
    mean_total_bytes = 2e9;
    diurnal = Ic_timeseries.Diurnal.default;
    weekend_damping = 0.6;
  }

let generate spec rng =
  if spec.nodes < 2 then invalid_arg "Gravity synth: need at least 2 nodes";
  if spec.bins <= 0 then invalid_arg "Gravity synth: bins must be positive";
  (* Roughan: node fan-in/fan-out totals are approximately exponential. *)
  let draw () =
    Array.init spec.nodes (fun _ -> Ic_prng.Sampler.exponential rng ~rate:1.)
  in
  let in_weights = draw () and out_weights = draw () in
  let in_norm = Ic_linalg.Vec.normalize_sum in_weights in
  let out_norm = Ic_linalg.Vec.normalize_sum out_weights in
  let tms =
    Array.init spec.bins (fun k ->
        let hour = Ic_timeseries.Timebin.hour_of_day spec.binning k in
        let day = Ic_timeseries.Timebin.day_of_week spec.binning k in
        let envelope =
          spec.mean_total_bytes
          *. Ic_timeseries.Diurnal.factor spec.diurnal ~hour
          *. Ic_timeseries.Diurnal.weekend_damping spec.weekend_damping ~day
        in
        Ic_traffic.Tm.init spec.nodes (fun i j ->
            envelope *. in_norm.(i) *. out_norm.(j)))
  in
  Ic_traffic.Series.make spec.binning tms
