module Vec = Ic_linalg.Vec
module Tm = Ic_traffic.Tm

let from_marginals ~ingress ~egress =
  let n = Array.length ingress in
  if Array.length egress <> n then
    invalid_arg "Gravity.from_marginals: dimension mismatch";
  let tin = Vec.sum ingress and tout = Vec.sum egress in
  if tin <= 0. || tout <= 0. then
    invalid_arg "Gravity.from_marginals: non-positive totals";
  let total = sqrt (tin *. tout) in
  Tm.init n (fun i j -> Float.max 0. (ingress.(i) *. egress.(j) /. total))

let of_tm tm =
  from_marginals
    ~ingress:(Ic_traffic.Marginals.ingress tm)
    ~egress:(Ic_traffic.Marginals.egress tm)

let of_series series =
  let n = Ic_traffic.Series.size series in
  let tms =
    Array.init (Ic_traffic.Series.length series) (fun k ->
        let tm = Ic_traffic.Series.tm series k in
        if Tm.total tm <= 0. then Tm.create n else of_tm tm)
  in
  Ic_traffic.Series.make series.Ic_traffic.Series.binning tms

let conditional_independence_gap tm =
  let n = Tm.size tm in
  let total = Tm.total tm in
  if total <= 0. then invalid_arg "Gravity.conditional_independence_gap: empty TM";
  let ingress = Ic_traffic.Marginals.ingress tm in
  let egress = Ic_traffic.Marginals.egress tm in
  let gap = ref 0. in
  for i = 0 to n - 1 do
    if ingress.(i) > 0. then
      for j = 0 to n - 1 do
        let conditional = Tm.get tm i j /. ingress.(i) in
        let marginal = egress.(j) /. total in
        gap := Float.max !gap (Float.abs (conditional -. marginal))
      done
  done;
  !gap
