lib/gravity/synth.ml: Array Ic_linalg Ic_prng Ic_timeseries Ic_traffic
