lib/gravity/gravity.mli: Ic_linalg Ic_traffic
