lib/gravity/synth.mli: Ic_prng Ic_timeseries Ic_traffic
