lib/gravity/gravity.ml: Array Float Ic_linalg Ic_traffic
