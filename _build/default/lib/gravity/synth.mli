(** Gravity-based synthetic TM generation (Roughan, CCR 2005): draw
    exponential ingress/egress totals and form the rank-one gravity TM.
    Implemented as the comparison point for the IC recipe — the paper's
    Section 5.5 argues the IC inputs are easier to generate because they are
    causally unconstrained. *)

type spec = {
  nodes : int;
  binning : Ic_timeseries.Timebin.t;
  bins : int;
  mean_total_bytes : float;
  diurnal : Ic_timeseries.Diurnal.t;
  weekend_damping : float;
}

val default_spec : spec
(** 22 nodes, 5-minute bins, one week. *)

val generate : spec -> Ic_prng.Rng.t -> Ic_traffic.Series.t
(** Exponential node weights (Roughan's observation) modulated by a diurnal
    envelope; the per-bin TM is the gravity product of the ingress and
    egress vectors, rescaled to the envelope total. *)
