(** The gravity model — the baseline the paper argues against.

    Under packet-level ingress/egress independence,
    [X_ij = X_i. X_.j / X_..]. It is exact when the underlying TM is of
    rank one and is the classic prior for tomogravity estimation. *)

val from_marginals :
  ingress:Ic_linalg.Vec.t -> egress:Ic_linalg.Vec.t -> Ic_traffic.Tm.t
(** [X_ij = ingress_i * egress_j / total]. The two marginal vectors should
    have (approximately) equal totals; the geometric mean of the two totals
    is used as the denominator. Raises [Invalid_argument] on dimension
    mismatch or non-positive totals. *)

val of_tm : Ic_traffic.Tm.t -> Ic_traffic.Tm.t
(** Gravity reconstruction of a TM from its own marginals. *)

val of_series : Ic_traffic.Series.t -> Ic_traffic.Series.t
(** Per-bin gravity reconstruction — the Figure 3 baseline. *)

val conditional_independence_gap : Ic_traffic.Tm.t -> float
(** Diagnostic for the paper's Section 3 argument: the maximum over (i,j) of
    [|P(E=j | I=i) - P(E=j)|]. Zero iff the TM satisfies packet-level
    independence exactly. Rows with no traffic are skipped. *)
