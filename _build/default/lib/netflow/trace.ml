type t = {
  node_i : int;
  node_j : int;
  duration_s : float;
  fwd : Packet.t list;
  rev : Packet.t list;
}

let capture connections ~node_i ~node_j ~duration_s =
  if duration_s <= 0. then invalid_arg "Trace.capture: bad duration";
  let relevant c =
    let open Connection in
    (c.initiator = node_i && c.responder = node_j)
    || (c.initiator = node_j && c.responder = node_i)
  in
  let in_window p = p.Packet.time_s >= 0. && p.Packet.time_s < duration_s in
  let packets =
    List.concat_map Packet.of_connection (List.filter relevant connections)
  in
  let fwd, rev =
    List.partition (fun p -> p.Packet.src_node = node_i)
      (List.filter in_window packets)
  in
  let by_time = List.sort (fun a b -> compare a.Packet.time_s b.Packet.time_s) in
  { node_i; node_j; duration_s; fwd = by_time fwd; rev = by_time rev }

type bin_measurement = {
  f_ij : float;
  f_ji : float;
  known_bytes : float;
  unknown_bytes : float;
}

(* Per-connection analysis state, keyed by the canonical 5-tuple. *)
type conn_state = {
  mutable syn_from_i : bool;
  mutable syn_from_j : bool;
  mutable fwd_seen : bool;  (* any i->j packet *)
  mutable rev_seen : bool;  (* any j->i packet *)
  mutable fwd_bytes_per_bin : (int, float) Hashtbl.t;
  mutable rev_bytes_per_bin : (int, float) Hashtbl.t;
}

let canonical_key p =
  let k = Packet.flow_key p in
  let r = Packet.reverse_key k in
  if k <= r then k else r

let measure_f trace ~bin_s =
  if bin_s <= 0. then invalid_arg "Trace.measure_f: bad bin width";
  let bins = int_of_float (Float.ceil (trace.duration_s /. bin_s)) in
  let bins = Stdlib.max bins 1 in
  let table : (int * int * int * int, conn_state) Hashtbl.t =
    Hashtbl.create 1024
  in
  let state_of p =
    let key = canonical_key p in
    match Hashtbl.find_opt table key with
    | Some s -> s
    | None ->
        let s =
          {
            syn_from_i = false;
            syn_from_j = false;
            fwd_seen = false;
            rev_seen = false;
            fwd_bytes_per_bin = Hashtbl.create 4;
            rev_bytes_per_bin = Hashtbl.create 4;
          }
        in
        Hashtbl.replace table key s;
        s
  in
  let add_bytes tbl bin bytes =
    let prev = Option.value ~default:0. (Hashtbl.find_opt tbl bin) in
    Hashtbl.replace tbl bin (prev +. bytes)
  in
  let ingest direction_is_fwd p =
    let s = state_of p in
    let bin = int_of_float (p.Packet.time_s /. bin_s) in
    let bin = Stdlib.min (Stdlib.max bin 0) (bins - 1) in
    if direction_is_fwd then begin
      s.fwd_seen <- true;
      add_bytes s.fwd_bytes_per_bin bin p.Packet.bytes;
      if p.Packet.syn then s.syn_from_i <- true
    end
    else begin
      s.rev_seen <- true;
      add_bytes s.rev_bytes_per_bin bin p.Packet.bytes;
      if p.Packet.syn then s.syn_from_j <- true
    end
  in
  List.iter (ingest true) trace.fwd;
  List.iter (ingest false) trace.rev;
  (* Per-bin accumulators following the paper's notation. *)
  let i_i = Array.make bins 0. (* i->j bytes of connections initiated at i *)
  and r_i = Array.make bins 0. (* i->j bytes of connections initiated at j *)
  and i_j = Array.make bins 0. (* j->i bytes of connections initiated at j *)
  and r_j = Array.make bins 0. (* j->i bytes of connections initiated at i *)
  and unknown = Array.make bins 0.
  and known = Array.make bins 0. in
  Hashtbl.iter
    (fun _key s ->
      let classified_i = s.syn_from_i && s.rev_seen in
      let classified_j = s.syn_from_j && s.fwd_seen in
      let spill_fwd target =
        Hashtbl.iter
          (fun bin bytes ->
            target.(bin) <- target.(bin) +. bytes;
            known.(bin) <- known.(bin) +. bytes)
          s.fwd_bytes_per_bin
      in
      let spill_rev target =
        Hashtbl.iter
          (fun bin bytes ->
            target.(bin) <- target.(bin) +. bytes;
            known.(bin) <- known.(bin) +. bytes)
          s.rev_bytes_per_bin
      in
      let spill_unknown () =
        Hashtbl.iter
          (fun bin bytes -> unknown.(bin) <- unknown.(bin) +. bytes)
          s.fwd_bytes_per_bin;
        Hashtbl.iter
          (fun bin bytes -> unknown.(bin) <- unknown.(bin) +. bytes)
          s.rev_bytes_per_bin
      in
      if classified_i && not classified_j then begin
        spill_fwd i_i;
        spill_rev r_j
      end
      else if classified_j && not classified_i then begin
        spill_fwd r_i;
        spill_rev i_j
      end
      else spill_unknown ())
    table;
  Array.init bins (fun b ->
      let f_of num den = if num +. den > 0. then num /. (num +. den) else 0. in
      {
        f_ij = f_of i_i.(b) r_j.(b);
        f_ji = f_of i_j.(b) r_i.(b);
        known_bytes = known.(b);
        unknown_bytes = unknown.(b);
      })

let unknown_fraction measurements =
  let known = ref 0. and unknown = ref 0. in
  Array.iter
    (fun m ->
      known := !known +. m.known_bytes;
      unknown := !unknown +. m.unknown_bytes)
    measurements;
  let total = !known +. !unknown in
  if total <= 0. then 0. else !unknown /. total
