(** Netflow-style flow records: per-5-tuple, per-bin aggregation of packets,
    the intermediate representation between raw traces and OD flows. *)

type t = {
  src_node : int;
  dst_node : int;
  src_port : int;
  dst_port : int;
  bin : int;
  packets : int;
  bytes : float;
  saw_syn : bool;
}

val of_packets : Packet.t list -> bin_s:float -> t list
(** Aggregate packets into flow records (one per 5-tuple per bin), sorted by
    bin then 5-tuple. *)

val od_volume : t list -> (int * int * int, float) Hashtbl.t
(** Sum bytes by [(bin, src_node, dst_node)]. *)

val match_bidirectional : t list -> t list -> (t * t) list
(** Pair flows from two directional captures whose 5-tuples correspond
    ([flow], [reverse flow]) regardless of bin; each forward 5-tuple is
    paired with every matching reverse 5-tuple's aggregate. Used by tests to
    cross-check {!Trace.measure_f}'s matching. *)
