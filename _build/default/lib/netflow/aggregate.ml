(* Bytes are spread uniformly over the connection's lifetime, clipped to the
   aggregation window — a long transfer contributes to every bin it spans,
   exactly as netflow-based TM construction sees it. *)
let spread tm ~width ~bins ~start_s ~duration_s ~row ~col ~bytes =
  if bytes > 0. then begin
    let duration = Float.max duration_s 1e-6 in
    let finish_s = start_s +. duration in
    let first = int_of_float (Float.floor (start_s /. width)) in
    let last = int_of_float (Float.floor ((finish_s -. 1e-9) /. width)) in
    let rate = bytes /. duration in
    for b = Stdlib.max first 0 to Stdlib.min last (bins - 1) do
      let lo = Float.max start_s (float_of_int b *. width) in
      let hi = Float.min finish_s (float_of_int (b + 1) *. width) in
      if hi > lo then Ic_traffic.Tm.add_to tm.(b) row col (rate *. (hi -. lo))
    done
  end

let to_series connections ~n ~binning ~bins =
  if bins <= 0 then invalid_arg "Aggregate.to_series: bins must be positive";
  let width = float_of_int binning.Ic_timeseries.Timebin.width_s in
  let tms = Array.init bins (fun _ -> Ic_traffic.Tm.create n) in
  List.iter
    (fun (c : Connection.t) ->
      spread tms ~width ~bins ~start_s:c.start_s ~duration_s:c.duration_s
        ~row:c.initiator ~col:c.responder ~bytes:c.fwd_bytes;
      spread tms ~width ~bins ~start_s:c.start_s ~duration_s:c.duration_s
        ~row:c.responder ~col:c.initiator ~bytes:c.rev_bytes)
    connections;
  Ic_traffic.Series.make binning tms

let expected_tm ~f ~activity ~preference =
  let n = Array.length preference in
  let p = Ic_linalg.Vec.normalize_sum preference in
  Ic_traffic.Tm.init n (fun i j ->
      (f *. activity.(i) *. p.(j)) +. ((1. -. f) *. activity.(j) *. p.(i)))
