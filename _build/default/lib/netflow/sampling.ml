let sample_packets rng ~rate packets =
  if rate <= 0 then invalid_arg "Sampling.sample_packets: bad rate";
  let p = 1. /. float_of_int rate in
  List.filter (fun _ -> Ic_prng.Rng.float rng < p) packets

let estimate_volume rng ~rate ~pkt_bytes v =
  if rate <= 0 then invalid_arg "Sampling.estimate_volume: bad rate";
  if pkt_bytes <= 0. then invalid_arg "Sampling.estimate_volume: bad packet size";
  if v < 0. then invalid_arg "Sampling.estimate_volume: negative volume";
  if v = 0. then 0.
  else begin
    let lambda = v /. pkt_bytes /. float_of_int rate in
    let sampled = Ic_prng.Sampler.poisson rng ~lambda in
    float_of_int sampled *. pkt_bytes *. float_of_int rate
  end

let noisy_tm rng ~rate ~pkt_bytes tm =
  let n = Ic_traffic.Tm.size tm in
  Ic_traffic.Tm.init n (fun i j ->
      estimate_volume rng ~rate ~pkt_bytes (Ic_traffic.Tm.get tm i j))
