(** Packet sampling, as used by the netflow collection behind datasets D1
    and D2 (1 packet in 1000). Sampling then inverting introduces the
    measurement noise that real TM data carries. *)

val sample_packets : Ic_prng.Rng.t -> rate:int -> Packet.t list -> Packet.t list
(** Keep each packet independently with probability [1/rate]. *)

val estimate_volume :
  Ic_prng.Rng.t -> rate:int -> pkt_bytes:float -> float -> float
(** [estimate_volume rng ~rate ~pkt_bytes v] simulates measuring a byte
    volume [v] through 1-in-[rate] packet sampling with mean packet size
    [pkt_bytes]: the sampled packet count is Poisson with mean
    [v / pkt_bytes / rate], and the estimate inverts the sampling. The
    estimator is unbiased with relative standard deviation
    [sqrt(rate * pkt_bytes / v)]. *)

val noisy_tm :
  Ic_prng.Rng.t -> rate:int -> pkt_bytes:float -> Ic_traffic.Tm.t ->
  Ic_traffic.Tm.t
(** Apply {!estimate_volume} to every OD entry — what a sampled-netflow
    pipeline reports for a true TM. *)
