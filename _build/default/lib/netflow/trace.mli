(** Bidirectional link packet traces and the paper's Section 5.2 procedure
    for measuring the forward-traffic fraction [f] from them (Figure 4).

    A trace pair captures both directions of one link (or node pair), as in
    dataset D3's IPLS traces. The measurement procedure:

    - match the two directions' flows by 5-tuple;
    - the initiator is the sender of the pure TCP SYN; connections whose
      handshake precedes the trace are classified unknown;
    - per time bin, [I_i] is the traffic on the i→j direction belonging to
      connections initiated at i (with a response seen), [R_i] the i→j
      traffic of connections initiated at j; then
      [f_ij = I_i / (I_i + R_j)]. *)

type t = {
  node_i : int;
  node_j : int;
  duration_s : float;
  fwd : Packet.t list;  (** packets i → j, time-sorted, within the window *)
  rev : Packet.t list;  (** packets j → i *)
}

val capture :
  Connection.t list -> node_i:int -> node_j:int -> duration_s:float -> t
(** Packetize the connections between the two nodes (either direction of
    initiation) and keep the packets that fall inside the capture window.
    Connections that start before time 0 contribute packets without their
    handshake — exactly the paper's "unknown" class. *)

type bin_measurement = {
  f_ij : float;  (** measured forward fraction for OD pair (i, j) *)
  f_ji : float;
  known_bytes : float;
  unknown_bytes : float;  (** traffic not attributable to an initiator *)
}

val measure_f : t -> bin_s:float -> bin_measurement array
(** Per-bin measurements over the capture window. Bins with no classified
    traffic report [f_ij = f_ji = 0]. *)

val unknown_fraction : bin_measurement array -> float
(** Overall fraction of unknown bytes — the paper reports < 20%. *)
