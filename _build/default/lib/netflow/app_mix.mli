(** Application catalogue for the connection-level simulator.

    Each application class carries the asymmetry of its request/response
    exchange as a forward-traffic fraction [f] (forward bytes over total
    bytes). The defaults reproduce the values the paper cites: HTTP ~0.06
    and Gnutella/P2P ~0.35 from Mellia et al.'s TStat study, Telnet/FTP
    forward/reverse ratio ~0.05 from Paxson. The byte-weighted aggregate of
    the default mix lands in the 0.2–0.3 band the paper measures on
    Abilene. *)

type app = {
  name : string;
  forward_fraction : float;  (** per-connection mean [f], in (0,1) *)
  mean_bytes : float;  (** mean total connection volume *)
  size_alpha : float;  (** Pareto tail index of connection volumes (>1) *)
  dst_port : int;  (** well-known responder port, for 5-tuples *)
}

type t

val make : (app * float) list -> t
(** Applications with connection-count weights. Raises [Invalid_argument]
    on empty lists, non-positive weights or invalid app parameters. *)

val default : t
(** web 55%, p2p 12%, ftp 5%, mail 8%, interactive 20% (by connection
    count). *)

val apps : t -> app array

val draw : t -> Ic_prng.Rng.t -> app
(** Sample an application class by connection-count weight. *)

val aggregate_f : t -> float
(** Byte-weighted expected forward fraction of the mix — what a large
    aggregate of connections converges to. *)

val mean_connection_bytes : t -> float
(** Expected total bytes of a random connection. *)
