(** Connection records and the connection-level workload generator.

    This is the generative process the IC model abstracts: hosts at access
    points initiate connections, responders are chosen independently of the
    initiator, and each connection exchanges forward (initiator→responder)
    and reverse traffic whose split depends on the application. *)

type t = {
  id : int;
  initiator : int;  (** access-point (node) index *)
  responder : int;
  app : App_mix.app;
  start_s : float;
  duration_s : float;
  fwd_bytes : float;  (** initiator → responder *)
  rev_bytes : float;  (** responder → initiator *)
  initiator_port : int;  (** ephemeral source port, part of the 5-tuple *)
}

val forward_fraction : t -> float
(** [fwd / (fwd + rev)] of one connection. *)

type workload = {
  activity_bytes : float array array;
      (** target initiated bytes per bin per node: [activity.(t).(i)] *)
  preference : float array;  (** responder-choice weights, normalized inside *)
  mix : App_mix.t;
  bin_s : float;  (** bin width in seconds *)
  mean_rate_bps : float;  (** mean transfer rate, sets durations *)
}

val generate : workload -> Ic_prng.Rng.t -> t list
(** Sample connections: each node/bin initiates a Poisson number of
    connections with mean [activity / mean_connection_bytes], responders
    drawn from the preference distribution, volumes Pareto with the
    application's mean and tail, forward split jittered around the
    application's [f]. Start times are uniform within the bin; durations
    follow volume / lognormal rate. Connections are returned sorted by
    start time. *)

val total_bytes : t list -> float

val aggregate_forward_fraction : t list -> float
(** Byte-weighted forward fraction of a set of connections. *)
