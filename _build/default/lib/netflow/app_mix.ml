type app = {
  name : string;
  forward_fraction : float;
  mean_bytes : float;
  size_alpha : float;
  dst_port : int;
}

type t = { apps : app array; weights : float array; alias : Ic_prng.Alias.t }

let check_app a =
  if a.forward_fraction <= 0. || a.forward_fraction >= 1. then
    invalid_arg "App_mix: forward_fraction must lie in (0,1)";
  if a.mean_bytes <= 0. then invalid_arg "App_mix: mean_bytes must be positive";
  if a.size_alpha <= 1. then
    invalid_arg "App_mix: size_alpha must exceed 1 (finite mean)"

let make entries =
  if entries = [] then invalid_arg "App_mix.make: empty mix";
  List.iter
    (fun (a, w) ->
      check_app a;
      if w <= 0. then invalid_arg "App_mix.make: non-positive weight")
    entries;
  let apps = Array.of_list (List.map fst entries) in
  let weights = Array.of_list (List.map snd entries) in
  { apps; weights; alias = Ic_prng.Alias.create weights }

let default =
  make
    [
      ( { name = "web"; forward_fraction = 0.06; mean_bytes = 60_000.;
          size_alpha = 1.5; dst_port = 80 },
        0.55 );
      ( { name = "p2p"; forward_fraction = 0.35; mean_bytes = 500_000.;
          size_alpha = 1.3; dst_port = 6346 },
        0.12 );
      ( { name = "ftp"; forward_fraction = 0.05; mean_bytes = 300_000.;
          size_alpha = 1.4; dst_port = 20 },
        0.05 );
      ( { name = "mail"; forward_fraction = 0.85; mean_bytes = 30_000.;
          size_alpha = 1.6; dst_port = 25 },
        0.08 );
      ( { name = "interactive"; forward_fraction = 0.05; mean_bytes = 15_000.;
          size_alpha = 1.7; dst_port = 22 },
        0.20 );
    ]

let apps t = Array.copy t.apps

let draw t rng = t.apps.(Ic_prng.Alias.draw t.alias rng)

let aggregate_f t =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun k a ->
      let bytes = t.weights.(k) *. a.mean_bytes in
      num := !num +. (bytes *. a.forward_fraction);
      den := !den +. bytes)
    t.apps;
  !num /. !den

let mean_connection_bytes t =
  let total_w = Array.fold_left ( +. ) 0. t.weights in
  let acc = ref 0. in
  Array.iteri
    (fun k a -> acc := !acc +. (t.weights.(k) *. a.mean_bytes))
    t.apps;
  !acc /. total_w
