lib/netflow/flow.ml: Hashtbl List Option Packet
