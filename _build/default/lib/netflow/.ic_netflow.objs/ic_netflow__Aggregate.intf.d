lib/netflow/aggregate.mli: Connection Ic_linalg Ic_timeseries Ic_traffic
