lib/netflow/trace.ml: Array Connection Float Hashtbl List Option Packet Stdlib
