lib/netflow/aggregate.ml: Array Connection Float Ic_linalg Ic_timeseries Ic_traffic List Stdlib
