lib/netflow/packet.ml: App_mix Connection Float List Stdlib
