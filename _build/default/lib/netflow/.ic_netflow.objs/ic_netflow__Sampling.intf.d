lib/netflow/sampling.mli: Ic_prng Ic_traffic Packet
