lib/netflow/app_mix.mli: Ic_prng
