lib/netflow/app_mix.ml: Array Ic_prng List
