lib/netflow/connection.ml: App_mix Array Float Ic_prng List
