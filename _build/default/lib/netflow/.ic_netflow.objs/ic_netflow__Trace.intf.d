lib/netflow/trace.mli: Connection Packet
