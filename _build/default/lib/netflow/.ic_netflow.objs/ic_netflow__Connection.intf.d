lib/netflow/connection.mli: App_mix Ic_prng
