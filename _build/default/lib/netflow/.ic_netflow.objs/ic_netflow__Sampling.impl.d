lib/netflow/sampling.ml: Ic_prng Ic_traffic List
