lib/netflow/flow.mli: Hashtbl Packet
