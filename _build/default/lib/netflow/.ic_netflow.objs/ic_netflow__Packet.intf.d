lib/netflow/packet.mli: Connection
