type t = {
  time_s : float;
  src_node : int;
  dst_node : int;
  src_port : int;
  dst_port : int;
  bytes : float;
  syn : bool;
  syn_ack : bool;
}

let mss = 1460.

(* Spread [count] packets of [total] bytes uniformly over the interval;
   the first packet goes out at [start] carrying the flag. *)
let direction ~src_node ~dst_node ~src_port ~dst_port ~start ~duration ~total
    ~is_forward =
  if total <= 0. then []
  else begin
    let count = Stdlib.max 1 (int_of_float (Float.ceil (total /. mss))) in
    let per_packet = total /. float_of_int count in
    let step = duration /. float_of_int count in
    List.init count (fun k ->
        {
          time_s = start +. (float_of_int k *. step);
          src_node;
          dst_node;
          src_port;
          dst_port;
          bytes = per_packet;
          syn = is_forward && k = 0;
          syn_ack = (not is_forward) && k = 0;
        })
  end

let of_connection (c : Connection.t) =
  let fwd =
    direction ~src_node:c.initiator ~dst_node:c.responder
      ~src_port:c.initiator_port ~dst_port:c.app.App_mix.dst_port
      ~start:c.start_s ~duration:c.duration_s ~total:c.fwd_bytes
      ~is_forward:true
  in
  (* the reverse direction starts one (small) RTT later *)
  let rev =
    direction ~src_node:c.responder ~dst_node:c.initiator
      ~src_port:c.app.App_mix.dst_port ~dst_port:c.initiator_port
      ~start:(c.start_s +. 0.01) ~duration:c.duration_s ~total:c.rev_bytes
      ~is_forward:false
  in
  List.merge (fun a b -> compare a.time_s b.time_s) fwd rev

let flow_key p = (p.src_node, p.dst_node, p.src_port, p.dst_port)

let reverse_key (src_node, dst_node, src_port, dst_port) =
  (dst_node, src_node, dst_port, src_port)
