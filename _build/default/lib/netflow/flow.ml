type t = {
  src_node : int;
  dst_node : int;
  src_port : int;
  dst_port : int;
  bin : int;
  packets : int;
  bytes : float;
  saw_syn : bool;
}

let of_packets packets ~bin_s =
  if bin_s <= 0. then invalid_arg "Flow.of_packets: bad bin width";
  let table = Hashtbl.create 1024 in
  List.iter
    (fun (p : Packet.t) ->
      let bin = int_of_float (p.time_s /. bin_s) in
      let key = (p.src_node, p.dst_node, p.src_port, p.dst_port, bin) in
      match Hashtbl.find_opt table key with
      | Some f ->
          Hashtbl.replace table key
            {
              f with
              packets = f.packets + 1;
              bytes = f.bytes +. p.bytes;
              saw_syn = f.saw_syn || p.syn;
            }
      | None ->
          Hashtbl.replace table key
            {
              src_node = p.src_node;
              dst_node = p.dst_node;
              src_port = p.src_port;
              dst_port = p.dst_port;
              bin;
              packets = 1;
              bytes = p.bytes;
              saw_syn = p.syn;
            })
    packets;
  let flows = Hashtbl.fold (fun _ f acc -> f :: acc) table [] in
  List.sort
    (fun a b ->
      compare
        (a.bin, a.src_node, a.dst_node, a.src_port, a.dst_port)
        (b.bin, b.src_node, b.dst_node, b.src_port, b.dst_port))
    flows

let od_volume flows =
  let table = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let key = (f.bin, f.src_node, f.dst_node) in
      let prev = Option.value ~default:0. (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (prev +. f.bytes))
    flows;
  table

let match_bidirectional fwd rev =
  let key f = (f.src_node, f.dst_node, f.src_port, f.dst_port) in
  let rev_table = Hashtbl.create 256 in
  List.iter
    (fun f ->
      let k = key f in
      let existing = Option.value ~default:[] (Hashtbl.find_opt rev_table k) in
      Hashtbl.replace rev_table k (f :: existing))
    rev;
  List.concat_map
    (fun f ->
      let wanted = Packet.reverse_key (key f) in
      match Hashtbl.find_opt rev_table wanted with
      | Some matches -> List.map (fun r -> (f, r)) matches
      | None -> [])
    fwd
