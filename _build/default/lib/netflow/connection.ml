type t = {
  id : int;
  initiator : int;
  responder : int;
  app : App_mix.app;
  start_s : float;
  duration_s : float;
  fwd_bytes : float;
  rev_bytes : float;
  initiator_port : int;
}

let forward_fraction c =
  let total = c.fwd_bytes +. c.rev_bytes in
  if total <= 0. then 0. else c.fwd_bytes /. total

type workload = {
  activity_bytes : float array array;
  preference : float array;
  mix : App_mix.t;
  bin_s : float;
  mean_rate_bps : float;
}

let connection_of_app rng ~id ~initiator ~responder ~(app : App_mix.app)
    ~start_s ~mean_rate_bps =
  (* Pareto volumes with the app's mean: mean = alpha x_min / (alpha - 1). *)
  let x_min = app.mean_bytes *. (app.size_alpha -. 1.) /. app.size_alpha in
  (* Truncate the Pareto tail: keeps volumes heavy-tailed while bounding the
     packet count of any single simulated connection. *)
  let total =
    Float.min
      (Ic_prng.Sampler.pareto rng ~alpha:app.size_alpha ~x_min)
      (app.mean_bytes *. 500.)
  in
  (* Per-connection jitter of the forward split around the app's mean. *)
  let jitter = Ic_prng.Sampler.lognormal rng ~mu:0. ~sigma:0.3 in
  let f =
    Float.min 0.95 (Float.max 0.01 (app.forward_fraction *. jitter))
  in
  let rate =
    mean_rate_bps /. 8. *. Ic_prng.Sampler.lognormal rng ~mu:0. ~sigma:0.5
  in
  let duration_s = Float.max 0.05 (total /. Float.max rate 1.) in
  {
    id;
    initiator;
    responder;
    app;
    start_s;
    duration_s;
    fwd_bytes = f *. total;
    rev_bytes = (1. -. f) *. total;
    initiator_port = 1024 + Ic_prng.Rng.int rng 64511;
  }

let generate w rng =
  if w.bin_s <= 0. then invalid_arg "Connection.generate: bad bin width";
  if w.mean_rate_bps <= 0. then invalid_arg "Connection.generate: bad rate";
  let responder_alias = Ic_prng.Alias.create w.preference in
  let mean_conn = App_mix.mean_connection_bytes w.mix in
  let next_id = ref 0 in
  let out = ref [] in
  Array.iteri
    (fun t per_node ->
      Array.iteri
        (fun i bytes ->
          if bytes > 0. then begin
            let lambda = bytes /. mean_conn in
            let count = Ic_prng.Sampler.poisson rng ~lambda in
            for _ = 1 to count do
              let app = App_mix.draw w.mix rng in
              let responder = Ic_prng.Alias.draw responder_alias rng in
              let start_s =
                (float_of_int t +. Ic_prng.Rng.float rng) *. w.bin_s
              in
              let c =
                connection_of_app rng ~id:!next_id ~initiator:i ~responder
                  ~app ~start_s ~mean_rate_bps:w.mean_rate_bps
              in
              incr next_id;
              out := c :: !out
            done
          end)
        per_node)
    w.activity_bytes;
  List.sort (fun a b -> compare a.start_s b.start_s) !out

let total_bytes cs =
  List.fold_left (fun acc c -> acc +. c.fwd_bytes +. c.rev_bytes) 0. cs

let aggregate_forward_fraction cs =
  let fwd = List.fold_left (fun acc c -> acc +. c.fwd_bytes) 0. cs in
  let total = total_bytes cs in
  if total <= 0. then 0. else fwd /. total
