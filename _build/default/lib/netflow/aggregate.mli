(** Aggregation of connections into OD-flow traffic matrices — the step that
    turns the connection-level generative process into the TM the IC model
    describes, and the ground for validating Equation 2 against its own
    microscopic process. *)

val to_series :
  Connection.t list ->
  n:int ->
  binning:Ic_timeseries.Timebin.t ->
  bins:int ->
  Ic_traffic.Series.t
(** Forward bytes go to OD pair (initiator, responder), reverse bytes to
    (responder, initiator), spread uniformly over the connection's lifetime
    (a long transfer contributes to every bin it spans). Bytes falling
    outside the [0, bins) window are clipped — exactly what a
    fixed-duration collection sees. *)

val expected_tm :
  f:float ->
  activity:Ic_linalg.Vec.t ->
  preference:Ic_linalg.Vec.t ->
  Ic_traffic.Tm.t
(** The IC-model expectation of {!to_series}'s output for one bin given the
    workload's parameters — i.e. Equation 2. Exposed so tests can check the
    simulator converges to the model. *)
