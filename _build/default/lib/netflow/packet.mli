(** Packetization of connections into header-trace records.

    Produces what a link monitor captures: per-packet timestamps, the TCP
    5-tuple, sizes, and SYN flags. The initiator's first packet is a pure
    SYN; the responder's first packet is a SYN-ACK — the paper's trace
    methodology identifies the connection initiator as "the sender of the
    TCP SYN packet". *)

type t = {
  time_s : float;
  src_node : int;
  dst_node : int;
  src_port : int;
  dst_port : int;
  bytes : float;
  syn : bool;  (** pure SYN: first packet from the initiator *)
  syn_ack : bool;  (** first packet from the responder *)
}

val mss : float
(** Segment payload size used for packetization (1460 bytes). *)

val of_connection : Connection.t -> t list
(** Both directions of one connection: forward packets from the initiator's
    node, reverse packets from the responder's node, spread uniformly over
    the connection's duration (handshake first). *)

val flow_key : t -> int * int * int * int
(** Canonical per-direction 5-tuple key
    [(src_node, dst_node, src_port, dst_port)] (protocol is always TCP). *)

val reverse_key : int * int * int * int -> int * int * int * int
(** The matching key of the opposite direction. *)
