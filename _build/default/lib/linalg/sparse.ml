type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (* length rows+1 *)
  col_idx : int array;  (* length nnz, sorted within each row *)
  values : float array;  (* length nnz *)
}

let rows t = t.rows

let cols t = t.cols

let nnz t = Array.length t.values

let of_triplets ~rows ~cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: entry (%d,%d) out of %dx%d" i j
             rows cols))
    triplets;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2))
      triplets
  in
  (* merge duplicates, drop zeros *)
  let merged = ref [] in
  List.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i = i' && j = j' ->
          merged := (i, j, v +. v') :: rest
      | _ -> merged := (i, j, v) :: !merged)
    sorted;
  let entries = List.rev (List.filter (fun (_, _, v) -> v <> 0.) !merged) in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    entries;
  for i = 1 to rows do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense m =
  let r, c = Mat.dims m in
  let triplets = ref [] in
  for i = r - 1 downto 0 do
    for j = c - 1 downto 0 do
      let v = Mat.get m i j in
      if v <> 0. then triplets := (i, j, v) :: !triplets
    done
  done;
  of_triplets ~rows:r ~cols:c !triplets

let to_dense t =
  let m = Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: out of range";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      found := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mulv_into t x ~into:y =
  if Array.length x <> t.cols then invalid_arg "Sparse.mulv_into: bad vector";
  if Array.length y <> t.rows then invalid_arg "Sparse.mulv_into: bad output";
  for i = 0 to t.rows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let mulv t x =
  if Array.length x <> t.cols then invalid_arg "Sparse.mulv: bad vector";
  let y = Array.make t.rows 0. in
  mulv_into t x ~into:y;
  y

let mulv_t_into t x ~into:y =
  if Array.length x <> t.rows then invalid_arg "Sparse.mulv_t_into: bad vector";
  if Array.length y <> t.cols then invalid_arg "Sparse.mulv_t_into: bad output";
  Array.fill y 0 (Array.length y) 0.;
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (t.values.(k) *. xi)
      done
  done

let mulv_t t x =
  if Array.length x <> t.rows then invalid_arg "Sparse.mulv_t: bad vector";
  let y = Array.make t.cols 0. in
  mulv_t_into t x ~into:y;
  y

let scale_cols t d =
  if Array.length d <> t.cols then invalid_arg "Sparse.scale_cols: bad vector";
  {
    t with
    values = Array.mapi (fun k v -> v *. d.(t.col_idx.(k))) t.values;
  }

let row_iter t i f =
  if i < 0 || i >= t.rows then invalid_arg "Sparse.row_iter: bad row";
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let transpose t =
  let triplets = ref [] in
  for i = t.rows - 1 downto 0 do
    for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
      triplets := (t.col_idx.(k), i, t.values.(k)) :: !triplets
    done
  done;
  of_triplets ~rows:t.cols ~cols:t.rows !triplets
