(** Immutable sparse matrices in compressed-sparse-row form.

    Routing matrices are extremely sparse (each OD pair crosses a handful of
    links), so the estimation pipeline stores them in CSR and never
    densifies. *)

type t

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate coordinates are summed; explicit zeros are dropped. Raises
    [Invalid_argument] on out-of-range coordinates. *)

val of_dense : Mat.t -> t

val to_dense : t -> Mat.t

val get : t -> int -> int -> float
(** Logarithmic in the row's population. *)

val mulv : t -> Vec.t -> Vec.t
(** Sparse matrix-vector product. *)

val mulv_t : t -> Vec.t -> Vec.t
(** [mulv_t a x] is [aᵀ x]. *)

val mulv_into : t -> Vec.t -> into:Vec.t -> unit
(** [mulv_into a x ~into] writes [a x] into the caller-owned buffer [into]
    (length [rows a]) without allocating. Bit-identical to {!mulv}. *)

val mulv_t_into : t -> Vec.t -> into:Vec.t -> unit
(** [mulv_t_into a x ~into] writes [aᵀ x] into [into] (length [cols a],
    zeroed first) without allocating. Bit-identical to {!mulv_t}. *)

val scale_cols : t -> Vec.t -> t
(** [scale_cols a d] is [a * diag d]. *)

val row_iter : t -> int -> (int -> float -> unit) -> unit
(** Iterate over the stored entries of one row. *)

val transpose : t -> t
