(** Cholesky factorization for symmetric positive-definite systems. *)

type t
(** A factorization [A = L Lᵀ] with [L] lower-triangular. *)

val default_ridge : float
(** [1e-10] — the standard relative ridge for normal-equation systems built
    from routing or design matrices (tomogravity's [R W Rᵀ], {!Lsq}'s
    [AᵀA]). These systems are numerically rank deficient by construction, so
    a ridge well above the [1e-12] last-resort jitter of {!factorize_ridge}
    keeps the solve stable without visibly perturbing the solution. *)

val factorize : Mat.t -> (t, [ `Not_positive_definite of int ]) result
(** [factorize a] factorizes the symmetric matrix [a] (only the lower triangle
    is read). [`Not_positive_definite k] reports a non-positive pivot at step
    [k]. Raises [Invalid_argument] if [a] is not square. *)

val factorize_into :
  ?shift:float ->
  l:Mat.t ->
  Mat.t ->
  (t, [ `Not_positive_definite of int ]) result
(** [factorize_into ~l a] is {!factorize} writing the factor into the
    caller-owned buffer [l] (same dimensions as [a]) instead of allocating —
    the workspace entry point for per-bin solves that reuse one factor buffer
    across a whole series. [?shift] (default [0.]) factorizes [a + shift I]
    without materializing the shifted matrix. The returned [t] aliases [l]:
    the factorization is only valid until [l] is overwritten. On [Error] the
    contents of [l] are unspecified. Produces bit-identical factors to
    {!factorize} on the (shifted) input. *)

val factorize_ridge : ?ridge:float -> Mat.t -> t
(** [factorize_ridge ~ridge a] factorizes [a + lambda I] where [lambda] starts
    at [ridge] times the mean diagonal (default [1e-12]) and is increased by
    factors of 10 until the factorization succeeds. Intended for normal
    equations that may be numerically rank deficient, such as the tomogravity
    system [R W Rᵀ]. *)

val factorize_ridge_into : ?ridge:float -> l:Mat.t -> Mat.t -> t
(** {!factorize_ridge} writing into a caller-owned factor buffer (see
    {!factorize_into} for the aliasing rules). *)

val solve : t -> Vec.t -> Vec.t
(** [solve ch b] solves [A x = b]. *)

val solve_into : t -> Vec.t -> unit
(** [solve_into ch b] solves [A x = b] in place, overwriting [b] with the
    solution — no allocation. *)

val log_det : t -> float
(** Log-determinant of [A]. *)
