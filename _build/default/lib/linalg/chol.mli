(** Cholesky factorization for symmetric positive-definite systems. *)

type t
(** A factorization [A = L Lᵀ] with [L] lower-triangular. *)

val factorize : Mat.t -> (t, [ `Not_positive_definite of int ]) result
(** [factorize a] factorizes the symmetric matrix [a] (only the lower triangle
    is read). [`Not_positive_definite k] reports a non-positive pivot at step
    [k]. Raises [Invalid_argument] if [a] is not square. *)

val factorize_ridge : ?ridge:float -> Mat.t -> t
(** [factorize_ridge ~ridge a] factorizes [a + lambda I] where [lambda] starts
    at [ridge] times the mean diagonal (default [1e-12]) and is increased by
    factors of 10 until the factorization succeeds. Intended for normal
    equations that may be numerically rank deficient, such as the tomogravity
    system [R W Rᵀ]. *)

val solve : t -> Vec.t -> Vec.t
(** [solve ch b] solves [A x = b]. *)

val log_det : t -> float
(** Log-determinant of [A]. *)
