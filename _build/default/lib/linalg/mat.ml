type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Mat.of_arrays: ragged rows")
      a;
    init rows cols (fun i j -> a.(i).(j))
  end

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)

let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let fill m x = Array.fill m.data 0 (Array.length m.data) x

let update m i j f =
  let k = (i * m.cols) + j in
  m.data.(k) <- f m.data.(k)

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let copy m = { m with data = Array.copy m.data }

let dims m = (m.rows, m.cols)

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: bad length";
  Array.blit v 0 m.data (i * m.cols) m.cols

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_dims "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same_dims "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: dimension mismatch (%dx%d times %dx%d)" a.rows
         a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let mulv a x =
  if a.cols <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.mulv: %dx%d matrix, %d vector" a.rows a.cols
         (Array.length x));
  let y = Array.make a.rows 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let mulv_t a x =
  if a.rows <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.mulv_t: %dx%d matrix, %d vector" a.rows a.cols
         (Array.length x));
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then begin
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
    end
  done;
  y

let gram a =
  let n = a.cols in
  let g = create n n in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to n - 1 do
      let aij = a.data.(base + j) in
      if aij <> 0. then
        for k = j to n - 1 do
          g.data.((j * n) + k) <- g.data.((j * n) + k) +. (aij *. a.data.(base + k))
        done
    done
  done;
  for j = 0 to n - 1 do
    for k = 0 to j - 1 do
      g.data.((j * n) + k) <- g.data.((k * n) + j)
    done
  done;
  g

let frobenius m = Vec.nrm2 m.data

let max_abs m = Vec.amax m.data

let approx_equal ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Vec.approx_equal ?tol a.data b.data

let map f m = { m with data = Array.map f m.data }

let fold f acc m = Array.fold_left f acc m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf " %10.4g" (get m i j)
    done;
    Format.fprintf ppf " |";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
