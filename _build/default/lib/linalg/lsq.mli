(** Linear least-squares drivers. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] minimizes [||a x - b||]. Uses Householder QR when [a] is tall
    and well conditioned; falls back to ridge-regularized normal equations
    when [a] is rank deficient or wide, which selects a small-norm solution. *)

val solve_normal : ?ridge:float -> Mat.t -> Vec.t -> Vec.t
(** [solve_normal a b] solves the normal equations [(aᵀa + lambda I) x = aᵀ b]
    with relative ridge [ridge] (default [1e-10]). *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [||a x - b||]. *)

val pseudo_solve : Mat.t -> Vec.t -> Vec.t
(** Minimum-norm least-squares solution, valid for any shape: tall systems go
    through QR, wide or rank-deficient systems through regularized normal
    equations of the transposed problem. *)
