type t = {
  lu : Mat.t;  (* packed L (unit diagonal, below) and U (on/above diagonal) *)
  perm : int array;  (* row permutation: solve uses b.(perm.(i)) *)
  sign : float;  (* parity of the permutation, for determinants *)
}

let factorize a =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Lu.factorize: matrix not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  let exception Singular of int in
  try
    for k = 0 to n - 1 do
      (* partial pivoting: largest magnitude in column k at/below row k *)
      let pivot_row = ref k in
      for i = k + 1 to n - 1 do
        if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot_row k)
        then pivot_row := i
      done;
      if !pivot_row <> k then begin
        for j = 0 to n - 1 do
          let tmp = Mat.get lu k j in
          Mat.set lu k j (Mat.get lu !pivot_row j);
          Mat.set lu !pivot_row j tmp
        done;
        let tmp = perm.(k) in
        perm.(k) <- perm.(!pivot_row);
        perm.(!pivot_row) <- tmp;
        sign := -. !sign
      end;
      let pivot = Mat.get lu k k in
      if pivot = 0. then raise (Singular k);
      for i = k + 1 to n - 1 do
        let factor = Mat.get lu i k /. pivot in
        Mat.set lu i k factor;
        if factor <> 0. then
          for j = k + 1 to n - 1 do
            Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
          done
      done
    done;
    Ok { lu; perm; sign = !sign }
  with Singular k -> Error (`Singular k)

let solve { lu; perm; _ } b =
  let n, _ = Mat.dims lu in
  if Array.length b <> n then invalid_arg "Lu.solve: bad right-hand side";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit-lower L *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution with U *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done;
  x

let solve_mat fact b =
  let _, nrhs = Mat.dims b in
  let n, _ = Mat.dims fact.lu in
  let out = Mat.create n nrhs in
  for j = 0 to nrhs - 1 do
    let x = solve fact (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out

let det { lu; sign; _ } =
  let n, _ = Mat.dims lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let inverse fact =
  let n, _ = Mat.dims fact.lu in
  solve_mat fact (Mat.identity n)

let solve_system a b =
  match factorize a with
  | Ok fact -> Ok (solve fact b)
  | Error _ as e -> e
