(** Dense row-major matrices of floats. *)

type t = private {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** [create m n] is the [m] x [n] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init m n f] has entry [f i j] at row [i], column [j]. *)

val of_arrays : float array array -> t
(** Build from an array of equal-length rows. *)

val to_arrays : t -> float array array

val identity : int -> t

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val copy : t -> t

val dims : t -> int * int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** [get] without bounds checks. For inner loops that have already validated
    their index ranges; out-of-range access is undefined behaviour. *)

val unsafe_set : t -> int -> int -> float -> unit
(** [set] without bounds checks (see {!unsafe_get}). *)

val fill : t -> float -> unit
(** Set every entry to the given value (in place). *)

val update : t -> int -> int -> (float -> float) -> unit

val row : t -> int -> Vec.t
(** Copy of row [i]. *)

val col : t -> int -> Vec.t
(** Copy of column [j]. *)

val set_row : t -> int -> Vec.t -> unit

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mulv : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val mulv_t : t -> Vec.t -> Vec.t
(** [mulv_t a x] is [transpose a * x] without forming the transpose. *)

val gram : t -> t
(** [gram a] is [transpose a * a], exploiting symmetry. *)

val frobenius : t -> float

val max_abs : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val map : (float -> float) -> t -> t

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val pp : Format.formatter -> t -> unit
