(** LU factorization with partial pivoting, for square systems. *)

type t
(** A factorization [P A = L U] of a square matrix [A]. *)

val factorize : Mat.t -> (t, [ `Singular of int ]) result
(** [factorize a] factorizes the square matrix [a]. [`Singular k] reports a
    zero pivot at elimination step [k]. Raises [Invalid_argument] if [a] is
    not square. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve for several right-hand sides given as columns. *)

val det : t -> float

val inverse : t -> Mat.t

val solve_system : Mat.t -> Vec.t -> (Vec.t, [ `Singular of int ]) result
(** One-shot [factorize] + [solve]. *)
