(** Householder QR factorization for tall (or square) matrices. *)

type t
(** A factorization [A = Q R] of an [m] x [n] matrix with [m >= n], with [Q]
    orthonormal (stored implicitly as Householder reflectors) and [R] upper
    triangular. *)

val factorize : Mat.t -> t
(** Raises [Invalid_argument] if the matrix has more columns than rows. *)

val r : t -> Mat.t
(** The [n] x [n] upper-triangular factor. *)

val apply_qt : t -> Vec.t -> Vec.t
(** [apply_qt qr b] computes [Qᵀ b] (length [m]). *)

val rank : ?tol:float -> t -> int
(** Numerical rank estimated from the diagonal of [R]: entries whose magnitude
    is at most [tol] times the largest diagonal magnitude are treated as zero.
    Default [tol] is [1e-12]. *)

val solve : t -> Vec.t -> Vec.t
(** Least-squares solution of [A x = b] via back substitution on [R]. Raises
    [Invalid_argument] if [R] is exactly singular; use {!Lsq.solve} for a
    rank-deficiency-tolerant driver. *)
