(** Non-negative least squares (Lawson–Hanson active-set method).

    Solves [minimize ||a x - b||  subject to  x >= 0]. This is the inner
    solver of the IC-model fitting procedure: activities and preferences are
    physical byte rates and probabilities and must stay non-negative. *)

val solve : ?max_iter:int -> ?tol:float -> Mat.t -> Vec.t -> Vec.t
(** [solve a b] returns the NNLS solution. [max_iter] bounds the number of
    active-set changes (default [3 * cols]); [tol] is the dual-feasibility
    tolerance relative to the problem scale (default [1e-10]). The result
    always satisfies [x >= 0] even if the iteration limit is reached. *)

val solve_gram : ?max_iter:int -> ?tol:float -> Mat.t -> Vec.t -> Vec.t
(** [solve_gram g c] solves the same problem given the normal-equation data
    [g = aᵀa] and [c = aᵀb] directly. Useful when the design matrix is large
    but its Gram matrix is cheap to accumulate, as in the per-bin activity
    subproblem of the model fit. *)

val kkt_violation : Mat.t -> Vec.t -> Vec.t -> float
(** [kkt_violation a b x] measures how far [x] is from satisfying the NNLS
    KKT conditions for [min ||a x - b||, x >= 0]: the maximum of (i) negative
    entries of [x], (ii) positive dual residual on the active set and (iii)
    absolute dual residual on the free set, scaled by the problem size.
    Near-zero means optimal; used by property tests. *)
