type t = float array

let create n = Array.make n 0.

let init = Array.init

let make = Array.make

let copy = Array.copy

let dim = Array.length

let fill v x = Array.fill v 0 (Array.length v) x

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let amax v =
  let m = ref 0. in
  for i = 0 to Array.length v - 1 do
    let a = Float.abs v.(i) in
    if a > !m then m := a
  done;
  !m

(* Scaled two-pass Euclidean norm: avoids overflow/underflow on extreme
   magnitudes, which matter for byte-count traffic volumes (~1e9+). *)
let nrm2 v =
  let m = amax v in
  if m = 0. then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to Array.length v - 1 do
      let r = v.(i) /. m in
      acc := !acc +. (r *. r)
    done;
    m *. sqrt !acc
  end

let nrm2_diff x y =
  check_same_dim "nrm2_diff" x y;
  let m = ref 0. in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs (x.(i) -. y.(i)) in
    if a > !m then m := a
  done;
  let m = !m in
  if m = 0. then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let r = (x.(i) -. y.(i)) /. m in
      acc := !acc +. (r *. r)
    done;
    m *. sqrt !acc
  end

let asum v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. Float.abs v.(i)
  done;
  !acc

let sum v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. v.(i)
  done;
  !acc

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let scale a v = Array.map (fun x -> a *. x) v

let scale_inplace a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let add x y =
  check_same_dim "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let mul x y =
  check_same_dim "mul" x y;
  Array.mapi (fun i xi -> xi *. y.(i)) x

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let map = Array.map

let mapi = Array.mapi

let iteri = Array.iteri

let fold = Array.fold_left

let max_index v =
  if Array.length v = 0 then invalid_arg "Vec.max_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let clamp_nonneg v = Array.map (fun x -> if x < 0. then 0. else x) v

let normalize_sum v =
  let s = sum v in
  if s <= 0. then invalid_arg "Vec.normalize_sum: sum not positive";
  scale (1. /. s) v

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list v)
