type t = { u : Mat.t; singular_values : Vec.t; v : Mat.t }

(* One-sided Jacobi (Hestenes): orthogonalize the columns of a working copy
   by plane rotations, accumulating them into V; singular values are the
   final column norms and U the normalized columns. Numerically robust and
   simple — the matrices here are tiny (tens of columns). *)
let decompose_tall ?(max_sweeps = 60) ?(tol = 1e-12) a =
  let m, n = Mat.dims a in
  let w = Mat.copy a in
  let v = Mat.identity n in
  let col_dot p q =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc := !acc +. (Mat.get w i p *. Mat.get w i q)
    done;
    !acc
  in
  let rotate mat rows c s p q =
    for i = 0 to rows - 1 do
      let xp = Mat.get mat i p and xq = Mat.get mat i q in
      Mat.set mat i p ((c *. xp) -. (s *. xq));
      Mat.set mat i q ((s *. xp) +. (c *. xq))
    done
  in
  let sweeps = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let alpha = col_dot p p and beta = col_dot q q in
        let gamma = col_dot p q in
        if Float.abs gamma > tol *. sqrt (alpha *. beta) && gamma <> 0. then begin
          converged := false;
          let zeta = (beta -. alpha) /. (2. *. gamma) in
          let t =
            let s = if zeta >= 0. then 1. else -1. in
            s /. (Float.abs zeta +. sqrt (1. +. (zeta *. zeta)))
          in
          let c = 1. /. sqrt (1. +. (t *. t)) in
          let s = c *. t in
          rotate w m c s p q;
          rotate v n c s p q
        end
      done
    done
  done;
  (* singular values and left vectors *)
  let sigma = Array.init n (fun j -> Vec.nrm2 (Mat.col w j)) in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun a b -> compare sigma.(b) sigma.(a)) order;
  let u = Mat.create m n in
  let v_sorted = Mat.create n n in
  let s_sorted = Array.make n 0. in
  Array.iteri
    (fun dst src ->
      s_sorted.(dst) <- sigma.(src);
      if sigma.(src) > 0. then
        for i = 0 to m - 1 do
          Mat.set u i dst (Mat.get w i src /. sigma.(src))
        done;
      for i = 0 to n - 1 do
        Mat.set v_sorted i dst (Mat.get v i src)
      done)
    order;
  { u; singular_values = s_sorted; v = v_sorted }

let decompose ?max_sweeps ?tol a =
  let m, n = Mat.dims a in
  if m >= n then decompose_tall ?max_sweeps ?tol a
  else begin
    (* A = U S Vt  <=>  At = V S Ut *)
    let { u; singular_values; v } =
      decompose_tall ?max_sweeps ?tol (Mat.transpose a)
    in
    { u = v; singular_values; v = u }
  end

let reconstruct { u; singular_values; v } =
  let _, n = Mat.dims u in
  let scaled =
    Mat.init (fst (Mat.dims u)) n (fun i j ->
        Mat.get u i j *. singular_values.(j))
  in
  Mat.mul scaled (Mat.transpose v)

let rank ?(tol = 1e-10) t =
  let s = t.singular_values in
  if Array.length s = 0 || s.(0) <= 0. then 0
  else
    Array.fold_left (fun acc x -> if x > tol *. s.(0) then acc + 1 else acc) 0 s

let condition_number t =
  let s = t.singular_values in
  let n = Array.length s in
  if n = 0 || s.(n - 1) <= 0. then infinity else s.(0) /. s.(n - 1)

let pseudo_inverse ?(tol = 1e-10) t =
  let m, n = Mat.dims t.u in
  let cutoff = tol *. (if Array.length t.singular_values > 0 then t.singular_values.(0) else 0.) in
  (* pinv = V S+ Ut *)
  let v_scaled =
    Mat.init n n (fun i j ->
        if t.singular_values.(j) > cutoff then
          Mat.get t.v i j /. t.singular_values.(j)
        else 0.)
  in
  ignore m;
  Mat.mul v_scaled (Mat.transpose t.u)

let solve_min_norm ?tol t b =
  Mat.mulv (pseudo_inverse ?tol t) b
