(** Singular value decomposition by one-sided Jacobi rotations.

    For an [m] x [n] matrix with [m >= n], computes [A = U S Vᵀ] with
    orthonormal [U] (m x n), non-negative singular values in decreasing
    order, and orthonormal [V] (n x n). Used for numerically honest
    pseudo-inverses, rank decisions and conditioning diagnostics of the
    estimation systems ([Q Phi], routing matrices). *)

type t = {
  u : Mat.t;  (** m x n, orthonormal columns *)
  singular_values : Vec.t;  (** length n, decreasing, >= 0 *)
  v : Mat.t;  (** n x n, orthonormal columns *)
}

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] factorizes [a] (wide inputs are transposed internally and
    the roles of [u]/[v] swapped back). [max_sweeps] bounds the Jacobi
    sweeps (default 60); [tol] is the off-diagonal orthogonality target
    relative to the matrix scale (default 1e-12). *)

val reconstruct : t -> Mat.t
(** [U S Vᵀ] — for testing. *)

val rank : ?tol:float -> t -> int
(** Number of singular values above [tol] times the largest (default
    [1e-10]). *)

val condition_number : t -> float
(** Ratio of the extreme singular values; [infinity] if singular. *)

val pseudo_inverse : ?tol:float -> t -> Mat.t
(** Moore–Penrose inverse with singular values below the relative [tol]
    treated as zero. *)

val solve_min_norm : ?tol:float -> t -> Vec.t -> Vec.t
(** Minimum-norm least-squares solution of [A x = b]. *)
