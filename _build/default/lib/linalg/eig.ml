type t = { eigenvalues : Vec.t; eigenvectors : Mat.t }

let off_diagonal_norm a n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

let decompose ?(max_sweeps = 50) ?(tol = 1e-12) input =
  let n, cols = Mat.dims input in
  if n <> cols then invalid_arg "Eig.decompose: matrix not square";
  (* symmetrize defensively *)
  let a =
    Mat.init n n (fun i j -> 0.5 *. (Mat.get input i j +. Mat.get input j i))
  in
  let v = Mat.identity n in
  let scale = Float.max (Mat.frobenius a) 1e-300 in
  let sweeps = ref 0 in
  while off_diagonal_norm a n > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if apq <> 0. then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt (1. +. (theta *. theta)))
          in
          let c = 1. /. sqrt (1. +. (t *. t)) in
          let s = c *. t in
          (* A <- Jt A J on rows/columns p and q *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((c *. akp) -. (s *. akq));
            Mat.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((c *. apk) -. (s *. aqk));
            Mat.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let eigenvalues = Array.init n (fun i -> Mat.get a i i) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun x y -> compare eigenvalues.(y) eigenvalues.(x)) order;
  {
    eigenvalues = Array.map (fun i -> eigenvalues.(i)) order;
    eigenvectors = Mat.init n n (fun i j -> Mat.get v i order.(j));
  }

let reconstruct { eigenvalues; eigenvectors } =
  let n, _ = Mat.dims eigenvectors in
  let scaled =
    Mat.init n n (fun i j -> Mat.get eigenvectors i j *. eigenvalues.(j))
  in
  Mat.mul scaled (Mat.transpose eigenvectors)
