type t = { l : Mat.t }

let factorize a =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Chol.factorize: matrix not square";
  let l = Mat.create n n in
  let exception Bad of int in
  try
    for j = 0 to n - 1 do
      let acc = ref (Mat.get a j j) in
      for k = 0 to j - 1 do
        let ljk = Mat.get l j k in
        acc := !acc -. (ljk *. ljk)
      done;
      if !acc <= 0. then raise (Bad j);
      let ljj = sqrt !acc in
      Mat.set l j j ljj;
      for i = j + 1 to n - 1 do
        let acc = ref (Mat.get a i j) in
        for k = 0 to j - 1 do
          acc := !acc -. (Mat.get l i k *. Mat.get l j k)
        done;
        Mat.set l i j (!acc /. ljj)
      done
    done;
    Ok { l }
  with Bad j -> Error (`Not_positive_definite j)

let factorize_ridge ?(ridge = 1e-12) a =
  let n, _ = Mat.dims a in
  let mean_diag =
    if n = 0 then 1.
    else begin
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. Float.abs (Mat.get a i i)
      done;
      let m = !s /. float_of_int n in
      if m > 0. then m else 1.
    end
  in
  let rec attempt lambda =
    let shifted =
      Mat.init n n (fun i j ->
          if i = j then Mat.get a i j +. lambda else Mat.get a i j)
    in
    match factorize shifted with
    | Ok ch -> ch
    | Error (`Not_positive_definite _) ->
        if lambda > 1e6 *. mean_diag then
          invalid_arg "Chol.factorize_ridge: matrix is not positive definite"
        else attempt (Float.max (lambda *. 10.) (1e-12 *. mean_diag))
  in
  attempt (ridge *. mean_diag)

let solve { l } b =
  let n, _ = Mat.dims l in
  if Array.length b <> n then invalid_arg "Chol.solve: bad right-hand side";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y

let log_det { l } =
  let n, _ = Mat.dims l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2. *. !acc
