type t = { l : Mat.t }

let default_ridge = 1e-10

let factorize a =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Chol.factorize: matrix not square";
  let l = Mat.create n n in
  let exception Bad of int in
  try
    for j = 0 to n - 1 do
      let acc = ref (Mat.get a j j) in
      for k = 0 to j - 1 do
        let ljk = Mat.get l j k in
        acc := !acc -. (ljk *. ljk)
      done;
      if !acc <= 0. then raise (Bad j);
      let ljj = sqrt !acc in
      Mat.set l j j ljj;
      for i = j + 1 to n - 1 do
        let acc = ref (Mat.get a i j) in
        for k = 0 to j - 1 do
          acc := !acc -. (Mat.get l i k *. Mat.get l j k)
        done;
        Mat.set l i j (!acc /. ljj)
      done
    done;
    Ok { l }
  with Bad j -> Error (`Not_positive_definite j)

(* In-place variant of [factorize] writing into a caller-owned factor buffer:
   no per-solve allocation, and the inner loops run on the flat data arrays.
   [shift] adds [shift * I] without materializing the shifted matrix. The
   arithmetic (operation order included) is identical to [factorize] on the
   shifted matrix, so the two paths produce bit-identical factors. *)
let factorize_into ?(shift = 0.) ~l a =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Chol.factorize_into: matrix not square";
  if Mat.dims l <> (n, n) then
    invalid_arg "Chol.factorize_into: factor buffer has wrong dimensions";
  let ad = a.Mat.data and ld = l.Mat.data in
  let exception Bad of int in
  try
    for j = 0 to n - 1 do
      let jbase = j * n in
      let acc = ref (Array.unsafe_get ad (jbase + j) +. shift) in
      for k = 0 to j - 1 do
        let ljk = Array.unsafe_get ld (jbase + k) in
        acc := !acc -. (ljk *. ljk)
      done;
      if !acc <= 0. then raise (Bad j);
      let ljj = sqrt !acc in
      Array.unsafe_set ld (jbase + j) ljj;
      for i = j + 1 to n - 1 do
        let ibase = i * n in
        let acc = ref (Array.unsafe_get ad (ibase + j)) in
        for k = 0 to j - 1 do
          acc :=
            !acc
            -. (Array.unsafe_get ld (ibase + k)
                *. Array.unsafe_get ld (jbase + k))
        done;
        Array.unsafe_set ld (ibase + j) (!acc /. ljj)
      done
    done;
    Ok { l }
  with Bad j -> Error (`Not_positive_definite j)

let mean_diag_of a =
  let n, _ = Mat.dims a in
  if n = 0 then 1.
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. Float.abs (Mat.get a i i)
    done;
    let m = !s /. float_of_int n in
    if m > 0. then m else 1.
  end

let factorize_ridge ?(ridge = 1e-12) a =
  let n, _ = Mat.dims a in
  let mean_diag = mean_diag_of a in
  let rec attempt lambda =
    let shifted =
      Mat.init n n (fun i j ->
          if i = j then Mat.get a i j +. lambda else Mat.get a i j)
    in
    match factorize shifted with
    | Ok ch -> ch
    | Error (`Not_positive_definite _) ->
        if lambda > 1e6 *. mean_diag then
          invalid_arg "Chol.factorize_ridge: matrix is not positive definite"
        else attempt (Float.max (lambda *. 10.) (1e-12 *. mean_diag))
  in
  attempt (ridge *. mean_diag)

let factorize_ridge_into ?(ridge = 1e-12) ~l a =
  let mean_diag = mean_diag_of a in
  let rec attempt lambda =
    match factorize_into ~shift:lambda ~l a with
    | Ok ch -> ch
    | Error (`Not_positive_definite _) ->
        if lambda > 1e6 *. mean_diag then
          invalid_arg "Chol.factorize_ridge_into: matrix is not positive definite"
        else attempt (Float.max (lambda *. 10.) (1e-12 *. mean_diag))
  in
  attempt (ridge *. mean_diag)

let solve_into { l } b =
  let n, _ = Mat.dims l in
  if Array.length b <> n then
    invalid_arg "Chol.solve_into: bad right-hand side";
  let ld = l.Mat.data in
  for i = 0 to n - 1 do
    let ibase = i * n in
    let acc = ref (Array.unsafe_get b i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get ld (ibase + j) *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!acc /. Array.unsafe_get ld (ibase + i))
  done;
  for i = n - 1 downto 0 do
    let acc = ref (Array.unsafe_get b i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get ld ((j * n) + i) *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!acc /. Array.unsafe_get ld ((i * n) + i))
  done

let solve { l } b =
  let n, _ = Mat.dims l in
  if Array.length b <> n then invalid_arg "Chol.solve: bad right-hand side";
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y

let log_det { l } =
  let n, _ = Mat.dims l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2. *. !acc
