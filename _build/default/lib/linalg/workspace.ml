(* Keyed pools of scratch buffers for allocation-free inner loops.

   A workspace owns its buffers: a buffer is (re)allocated the first time a
   key is requested, or when the requested size changes, and reused on every
   later request. Hot paths that run once per time bin (tomogravity solves,
   fit sweeps) hoist a workspace outside the bin loop so the per-bin cost is
   pure arithmetic.

   The in-place kernels below mirror the corresponding [Mat]/[Vec]
   operations with identical floating-point operation order, so switching a
   call site from the allocating kernel to the workspace kernel is
   bit-exact. *)

type t = {
  vecs : (string, float array) Hashtbl.t;
  mats : (string, Mat.t) Hashtbl.t;
}

let create () = { vecs = Hashtbl.create 16; mats = Hashtbl.create 16 }

let vec t name n =
  match Hashtbl.find_opt t.vecs name with
  | Some v when Array.length v = n -> v
  | _ ->
      let v = Array.make n 0. in
      Hashtbl.replace t.vecs name v;
      v

let zero_vec t name n =
  let v = vec t name n in
  Array.fill v 0 n 0.;
  v

let mat t name rows cols =
  match Hashtbl.find_opt t.mats name with
  | Some m when Mat.dims m = (rows, cols) -> m
  | _ ->
      let m = Mat.create rows cols in
      Hashtbl.replace t.mats name m;
      m

let zero_mat t name rows cols =
  let m = mat t name rows cols in
  Mat.fill m 0.;
  m

(* y <- A x, same operation order as [Mat.mulv]. *)
let gemv_inplace a x y =
  let rows, cols = Mat.dims a in
  if Array.length x <> cols then invalid_arg "Workspace.gemv_inplace: bad x";
  if Array.length y <> rows then invalid_arg "Workspace.gemv_inplace: bad y";
  let ad = a.Mat.data in
  for i = 0 to rows - 1 do
    let base = i * cols in
    let acc = ref 0. in
    for j = 0 to cols - 1 do
      acc :=
        !acc +. (Array.unsafe_get ad (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done

(* y <- Aᵀ x, same operation order as [Mat.mulv_t]. *)
let gemv_t_inplace a x y =
  let rows, cols = Mat.dims a in
  if Array.length x <> rows then invalid_arg "Workspace.gemv_t_inplace: bad x";
  if Array.length y <> cols then invalid_arg "Workspace.gemv_t_inplace: bad y";
  let ad = a.Mat.data in
  Array.fill y 0 cols 0.;
  for i = 0 to rows - 1 do
    let base = i * cols in
    let xi = Array.unsafe_get x i in
    if xi <> 0. then
      for j = 0 to cols - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j
          +. (Array.unsafe_get ad (base + j) *. xi))
      done
  done

(* a <- a + alpha x xᵀ, both triangles (a stays symmetric). *)
let syr ~alpha x a =
  let rows, cols = Mat.dims a in
  if rows <> cols then invalid_arg "Workspace.syr: matrix not square";
  if Array.length x <> rows then invalid_arg "Workspace.syr: bad x";
  let ad = a.Mat.data in
  for i = 0 to rows - 1 do
    let base = i * rows in
    let axi = alpha *. Array.unsafe_get x i in
    if axi <> 0. then
      for j = 0 to rows - 1 do
        Array.unsafe_set ad (base + j)
          (Array.unsafe_get ad (base + j) +. (axi *. Array.unsafe_get x j))
      done
  done

let axpy = Vec.axpy
