lib/linalg/workspace.mli: Mat Vec
