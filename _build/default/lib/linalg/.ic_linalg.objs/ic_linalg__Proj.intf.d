lib/linalg/proj.mli: Vec
