lib/linalg/workspace.ml: Array Hashtbl Mat Vec
