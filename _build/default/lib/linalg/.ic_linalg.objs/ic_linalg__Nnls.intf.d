lib/linalg/nnls.mli: Mat Vec
