lib/linalg/lsq.ml: Chol Mat Qr Vec
