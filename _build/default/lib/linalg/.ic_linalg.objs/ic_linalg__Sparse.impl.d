lib/linalg/sparse.ml: Array List Mat Printf
