lib/linalg/cg.ml: Array Vec
