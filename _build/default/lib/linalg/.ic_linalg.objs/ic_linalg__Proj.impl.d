lib/linalg/proj.ml: Array Float Vec
