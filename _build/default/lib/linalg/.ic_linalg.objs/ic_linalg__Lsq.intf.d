lib/linalg/lsq.mli: Mat Vec
