lib/linalg/nnls.ml: Array Chol Float Mat Vec
