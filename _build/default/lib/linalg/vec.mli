(** Dense vectors of floats.

    A vector is a plain [float array]; this module provides the numerical
    kernels used throughout the library. All binary operations require equal
    lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val make : int -> float -> t
(** [make n x] is the length-[n] vector with every entry [x]. *)

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val dot : t -> t -> float
(** Inner product. *)

val nrm2 : t -> float
(** Euclidean norm, computed with scaling to avoid overflow. *)

val nrm2_diff : t -> t -> float
(** [nrm2_diff x y] is [nrm2 (sub x y)] without allocating. *)

val asum : t -> float
(** Sum of absolute values. *)

val sum : t -> float

val mean : t -> float

val amax : t -> float
(** Largest absolute value; 0 for the empty vector. *)

val scale : float -> t -> t

val scale_inplace : float -> t -> unit

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Elementwise product. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y]. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val max_index : t -> int
(** Index of the largest entry (first one on ties). Raises on empty input. *)

val clamp_nonneg : t -> t
(** Replace negative entries by [0.]. *)

val normalize_sum : t -> t
(** Scale so entries sum to 1. Raises [Invalid_argument] if the sum is not
    strictly positive. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
