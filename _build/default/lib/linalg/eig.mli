(** Eigendecomposition of symmetric matrices by the cyclic Jacobi method. *)

type t = {
  eigenvalues : Vec.t;  (** sorted decreasing *)
  eigenvectors : Mat.t;  (** column [k] pairs with eigenvalue [k]; orthonormal *)
}

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] diagonalizes the symmetric matrix [a] (only the lower
    triangle is trusted; the matrix is symmetrized first). [max_sweeps]
    bounds the Jacobi sweeps (default 50); [tol] is the off-diagonal target
    relative to the Frobenius norm (default 1e-12). Raises
    [Invalid_argument] on non-square input. *)

val reconstruct : t -> Mat.t
(** [V diag(lambda) Vᵀ] — for testing. *)
