let simplex ?(total = 1.) v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Proj.simplex: empty vector";
  if total <= 0. then invalid_arg "Proj.simplex: total must be positive";
  let u = Array.copy v in
  Array.sort (fun a b -> compare b a) u;
  (* Find rho = max { k : u_k - (cumsum_k - total)/k > 0 } over the sorted
     order, then shift by theta and clamp. *)
  let cumsum = ref 0. in
  let theta = ref 0. in
  let rho = ref 0 in
  for k = 0 to n - 1 do
    cumsum := !cumsum +. u.(k);
    let t = (!cumsum -. total) /. float_of_int (k + 1) in
    if u.(k) -. t > 0. then begin
      rho := k + 1;
      theta := t
    end
  done;
  if !rho = 0 then begin
    (* all mass collapses: fall back to uniform (v far in the negative
       orthant with equal entries) *)
    Array.make n (total /. float_of_int n)
  end
  else Array.map (fun x -> Float.max 0. (x -. !theta)) v

let box ~lo ~hi x = Float.min hi (Float.max lo x)

let nonneg = Vec.clamp_nonneg
