(** Euclidean projections onto the constraint sets used by the model fit. *)

val simplex : ?total:float -> Vec.t -> Vec.t
(** [simplex v] is the Euclidean projection of [v] onto the probability
    simplex [{ x : x >= 0, sum x = total }] (default [total = 1.]), using the
    sort-based algorithm of Duchi et al. (2008). Raises [Invalid_argument]
    for an empty vector or non-positive [total]. *)

val box : lo:float -> hi:float -> float -> float
(** Clamp a scalar into [[lo, hi]]. *)

val nonneg : Vec.t -> Vec.t
(** Projection onto the non-negative orthant. *)
