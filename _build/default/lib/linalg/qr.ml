type t = {
  qr : Mat.t;  (* R on/above the diagonal, reflector tails below *)
  betas : float array;  (* reflector scalings; 0 marks an identity step *)
  diag : float array;  (* diagonal of R (the qr diagonal holds reflectors) *)
}

let factorize a =
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Qr.factorize: more columns than rows";
  let qr = Mat.copy a in
  let betas = Array.make n 0. in
  let diag = Array.make n 0. in
  for k = 0 to n - 1 do
    (* Householder reflector annihilating column k below the diagonal. *)
    let scale = ref 0. in
    for i = k to m - 1 do
      let a = Float.abs (Mat.get qr i k) in
      if a > !scale then scale := a
    done;
    if !scale = 0. then begin
      betas.(k) <- 0.;
      diag.(k) <- 0.
    end
    else begin
      let s = !scale in
      let norm = ref 0. in
      for i = k to m - 1 do
        let r = Mat.get qr i k /. s in
        norm := !norm +. (r *. r)
      done;
      let alpha = s *. sqrt !norm in
      let akk = Mat.get qr k k in
      let alpha = if akk > 0. then -.alpha else alpha in
      (* v = x - alpha e1, stored in place; v_k in qr(k,k) *)
      Mat.set qr k k (akk -. alpha);
      let vtv = ref 0. in
      for i = k to m - 1 do
        let v = Mat.get qr i k in
        vtv := !vtv +. (v *. v)
      done;
      let beta = if !vtv = 0. then 0. else 2. /. !vtv in
      betas.(k) <- beta;
      diag.(k) <- alpha;
      (* apply reflector to remaining columns *)
      for j = k + 1 to n - 1 do
        let dot = ref 0. in
        for i = k to m - 1 do
          dot := !dot +. (Mat.get qr i k *. Mat.get qr i j)
        done;
        let c = beta *. !dot in
        if c <> 0. then
          for i = k to m - 1 do
            Mat.set qr i j (Mat.get qr i j -. (c *. Mat.get qr i k))
          done
      done
    end
  done;
  { qr; betas; diag }

let r { qr; diag; _ } =
  let _, n = Mat.dims qr in
  Mat.init n n (fun i j ->
      if i > j then 0. else if i = j then diag.(i) else Mat.get qr i j)

let apply_qt { qr; betas; _ } b =
  let m, n = Mat.dims qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt: bad vector length";
  let y = Array.copy b in
  for k = 0 to n - 1 do
    let beta = betas.(k) in
    if beta <> 0. then begin
      let dot = ref 0. in
      for i = k to m - 1 do
        dot := !dot +. (Mat.get qr i k *. y.(i))
      done;
      let c = beta *. !dot in
      if c <> 0. then
        for i = k to m - 1 do
          y.(i) <- y.(i) -. (c *. Mat.get qr i k)
        done
    end
  done;
  y

let rank ?(tol = 1e-12) { diag; _ } =
  let dmax = Array.fold_left (fun acc d -> Float.max acc (Float.abs d)) 0. diag in
  if dmax = 0. then 0
  else
    Array.fold_left
      (fun acc d -> if Float.abs d > tol *. dmax then acc + 1 else acc)
      0 diag

let solve ({ qr; diag; _ } as fact) b =
  let _, n = Mat.dims qr in
  let y = apply_qt fact b in
  let x = Array.sub y 0 n in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get qr i j *. x.(j))
    done;
    if diag.(i) = 0. then invalid_arg "Qr.solve: rank-deficient system";
    x.(i) <- !acc /. diag.(i)
  done;
  x
