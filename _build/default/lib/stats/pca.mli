(** Principal component analysis, used for the "eigenflow" structural
    analysis of TM series (Lakhina et al., SIGMETRICS 2004 — the paper's
    reference [8]): a week of OD flows is effectively low-dimensional, with
    a handful of eigenflows carrying most of the variance. *)

type t = {
  mean : Ic_linalg.Vec.t;  (** per-dimension mean of the input rows *)
  components : Ic_linalg.Mat.t;
      (** one principal axis per column, orthonormal, sorted by variance *)
  variances : Ic_linalg.Vec.t;  (** eigenvalues of the covariance, >= 0 *)
}

val fit : Ic_linalg.Mat.t -> t
(** [fit data] with one observation per row and one dimension per column.
    Raises [Invalid_argument] with fewer than 2 rows. *)

val explained_ratio : t -> Ic_linalg.Vec.t
(** Per-component share of total variance (sums to 1 when the total
    variance is positive). *)

val components_for : t -> variance:float -> int
(** Smallest number of leading components explaining at least the given
    variance share (in (0, 1]). *)

val project : t -> Ic_linalg.Vec.t -> k:int -> Ic_linalg.Vec.t
(** Scores of one observation on the first [k] components. *)

val reconstruct : t -> Ic_linalg.Vec.t -> k:int -> Ic_linalg.Vec.t
(** Rank-[k] reconstruction of one observation. *)
