let distance sample cdf =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Ks.distance: empty sample";
  let xs = Array.copy sample in
  Array.sort compare xs;
  let nf = float_of_int n in
  let d = ref 0. in
  for k = 0 to n - 1 do
    let f = cdf xs.(k) in
    let lo = float_of_int k /. nf in
    let hi = float_of_int (k + 1) /. nf in
    d := Float.max !d (Float.max (Float.abs (f -. lo)) (Float.abs (f -. hi)))
  done;
  !d

let two_sample a b =
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Ks.two_sample: empty sample";
  let xa = Array.copy a and xb = Array.copy b in
  Array.sort compare xa;
  Array.sort compare xb;
  let na = Array.length xa and nb = Array.length xb in
  let fa i = float_of_int i /. float_of_int na in
  let fb j = float_of_int j /. float_of_int nb in
  let rec walk i j d =
    if i >= na || j >= nb then d
    else begin
      let i', j' =
        if xa.(i) < xb.(j) then (i + 1, j)
        else if xa.(i) > xb.(j) then (i, j + 1)
        else (i + 1, j + 1)
      in
      walk i' j' (Float.max d (Float.abs (fa i' -. fb j')))
    end
  in
  walk 0 0 0.
