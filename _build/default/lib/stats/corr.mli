(** Correlation measures. The paper checks (a) that preference values are
    essentially uncorrelated with egress volume above the median (Fig 8) and
    (b) that preference and mean activity are uncorrelated (Section 5.4). *)

val pearson : float array -> float array -> float
(** Linear correlation coefficient. Raises [Invalid_argument] on length
    mismatch, input shorter than 2, or zero variance. *)

val spearman : float array -> float array -> float
(** Rank correlation (Pearson on average-tie ranks). *)

val ranks : float array -> float array
(** Average-tie ranks (1-based), exposed for testing. *)
