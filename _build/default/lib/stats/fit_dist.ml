type exponential = { rate : float }

type lognormal = { mu : float; sigma : float }

let exponential_mle xs =
  let m = Descriptive.mean xs in
  if m <= 0. then invalid_arg "Fit_dist.exponential_mle: non-positive mean";
  { rate = 1. /. m }

let lognormal_mle xs =
  if Array.length xs = 0 then invalid_arg "Fit_dist.lognormal_mle: empty input";
  Array.iter
    (fun x ->
      if x <= 0. then
        invalid_arg "Fit_dist.lognormal_mle: non-positive sample")
    xs;
  let logs = Array.map log xs in
  let mu = Descriptive.mean logs in
  (* MLE uses the population variance (denominator n) *)
  let n = float_of_int (Array.length logs) in
  let acc = ref 0. in
  Array.iter
    (fun l ->
      let d = l -. mu in
      acc := !acc +. (d *. d))
    logs;
  let sigma = sqrt (!acc /. n) in
  { mu; sigma = Float.max sigma 1e-12 }

let exponential_log_likelihood { rate } xs =
  Array.fold_left (fun acc x -> acc +. log rate -. (rate *. x)) 0. xs

let lognormal_log_likelihood { mu; sigma } xs =
  let c = -.log (sigma *. sqrt (2. *. Float.pi)) in
  Array.fold_left
    (fun acc x ->
      let z = (log x -. mu) /. sigma in
      acc +. c -. log x -. (0.5 *. z *. z))
    0. xs

type comparison = {
  exp_fit : exponential;
  logn_fit : lognormal;
  exp_ks : float;
  logn_ks : float;
  lognormal_preferred : bool;
}

let compare_tail_models xs =
  let exp_fit = exponential_mle xs in
  let logn_fit = lognormal_mle xs in
  let exp_cdf x = 1. -. Ccdf.exponential ~rate:exp_fit.rate x in
  let logn_cdf x =
    1. -. Ccdf.lognormal ~mu:logn_fit.mu ~sigma:logn_fit.sigma x
  in
  let exp_ks = Ks.distance xs exp_cdf in
  let logn_ks = Ks.distance xs logn_cdf in
  { exp_fit; logn_fit; exp_ks; logn_ks; lognormal_preferred = logn_ks < exp_ks }
