type t = { xs : float array; probs : float array }

let of_sample sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Ccdf.of_sample: empty sample";
  let xs = Array.copy sample in
  Array.sort compare xs;
  let probs =
    Array.init n (fun k -> float_of_int (n - k - 1) /. float_of_int n)
  in
  { xs; probs }

let eval t x =
  (* P(X > x): fraction of sample strictly greater than x *)
  let n = Array.length t.xs in
  (* binary search for first index with xs.(i) > x *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int (n - !lo) /. float_of_int n

let exponential ~rate x = if x < 0. then 1. else exp (-.rate *. x)

(* Abramowitz & Stegun 7.1.26 erf approximation: max abs error 1.5e-7,
   plenty for goodness-of-fit comparisons. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let std_normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

let lognormal ~mu ~sigma x =
  if x <= 0. then 1.
  else 1. -. std_normal_cdf ((log x -. mu) /. sigma)

let log_log_points t =
  let acc = ref [] in
  for k = Array.length t.xs - 1 downto 0 do
    if t.xs.(k) > 0. && t.probs.(k) > 0. then
      acc := (t.xs.(k), t.probs.(k)) :: !acc
  done;
  !acc
