(** Maximum-likelihood distribution fits used for Figure 7: the paper fits
    exponential and lognormal models to the preference values and finds the
    lognormal (mu ~ -4.3, sigma ~ 1.7) clearly better in the tail. *)

type exponential = { rate : float }

type lognormal = { mu : float; sigma : float }

val exponential_mle : float array -> exponential
(** [rate = 1 / mean]. Raises [Invalid_argument] on empty input or
    non-positive mean. *)

val lognormal_mle : float array -> lognormal
(** [mu, sigma] are the mean and (population) standard deviation of the log
    data. Raises [Invalid_argument] if any sample is non-positive. *)

val exponential_log_likelihood : exponential -> float array -> float

val lognormal_log_likelihood : lognormal -> float array -> float

type comparison = {
  exp_fit : exponential;
  logn_fit : lognormal;
  exp_ks : float;  (** KS distance of the exponential fit *)
  logn_ks : float;  (** KS distance of the lognormal fit *)
  lognormal_preferred : bool;
      (** true when the lognormal fit has the smaller KS distance *)
}

val compare_tail_models : float array -> comparison
(** Fit both models and compare by Kolmogorov–Smirnov distance. *)
