module Vec = Ic_linalg.Vec
module Mat = Ic_linalg.Mat

type t = { mean : Vec.t; components : Mat.t; variances : Vec.t }

let fit data =
  let rows, cols = Mat.dims data in
  if rows < 2 then invalid_arg "Pca.fit: need at least two observations";
  let mean =
    Array.init cols (fun j ->
        let acc = ref 0. in
        for i = 0 to rows - 1 do
          acc := !acc +. Mat.get data i j
        done;
        !acc /. float_of_int rows)
  in
  let centered = Mat.init rows cols (fun i j -> Mat.get data i j -. mean.(j)) in
  let cov = Mat.scale (1. /. float_of_int (rows - 1)) (Mat.gram centered) in
  let eig = Ic_linalg.Eig.decompose cov in
  {
    mean;
    components = eig.eigenvectors;
    variances = Vec.clamp_nonneg eig.eigenvalues;
  }

let explained_ratio t =
  let total = Vec.sum t.variances in
  if total <= 0. then Array.make (Array.length t.variances) 0.
  else Vec.scale (1. /. total) t.variances

let components_for t ~variance =
  if variance <= 0. || variance > 1. then
    invalid_arg "Pca.components_for: variance share out of (0,1]";
  let ratios = explained_ratio t in
  let rec scan k acc =
    if k >= Array.length ratios then Array.length ratios
    else begin
      let acc = acc +. ratios.(k) in
      if acc >= variance -. 1e-12 then k + 1 else scan (k + 1) acc
    end
  in
  scan 0 0.

let check_k t k =
  let _, n = Mat.dims t.components in
  if k < 0 || k > n then invalid_arg "Pca: component count out of range"

let project t x ~k =
  check_k t k;
  let centered = Vec.sub x t.mean in
  Array.init k (fun c -> Vec.dot centered (Mat.col t.components c))

let reconstruct t x ~k =
  check_k t k;
  let scores = project t x ~k in
  let out = Array.copy t.mean in
  for c = 0 to k - 1 do
    Vec.axpy scores.(c) (Mat.col t.components c) out
  done;
  out
