type interval = { estimate : float; lo : float; hi : float }

let ci_of ?(replicates = 1000) ?(confidence = 0.95) rng statistic xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci_of: empty sample";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.ci_of: confidence must lie in (0,1)";
  if replicates < 10 then invalid_arg "Bootstrap.ci_of: too few replicates";
  let estimate = statistic xs in
  let resample = Array.make n 0. in
  let stats =
    Array.init replicates (fun _ ->
        for k = 0 to n - 1 do
          resample.(k) <- xs.(Ic_prng.Rng.int rng n)
        done;
        statistic resample)
  in
  let alpha = (1. -. confidence) /. 2. in
  {
    estimate;
    lo = Descriptive.quantile stats alpha;
    hi = Descriptive.quantile stats (1. -. alpha);
  }

let mean_ci ?replicates ?confidence rng xs =
  ci_of ?replicates ?confidence rng Descriptive.mean xs

let quantile_ci ?replicates ?confidence rng ~q xs =
  ci_of ?replicates ?confidence rng (fun s -> Descriptive.quantile s q) xs
