(** Empirical complementary cumulative distribution functions, the
    representation used by the paper's Figure 7 (log-log CCDF of preference
    values against exponential and lognormal fits). *)

type t = { xs : float array; probs : float array }
(** Sorted support points with [probs.(k) = P(X > xs.(k))] estimated as
    [(n - k - 1) / n] — the standard empirical CCDF on the sample itself. *)

val of_sample : float array -> t
(** Raises [Invalid_argument] on empty input. *)

val eval : t -> float -> float
(** Step-function evaluation at an arbitrary point. *)

val exponential : rate:float -> float -> float
(** Analytic CCDF [exp (-rate x)] for [x >= 0] (1 below 0). *)

val lognormal : mu:float -> sigma:float -> float -> float
(** Analytic CCDF [1 - Phi((ln x - mu)/sigma)] for [x > 0] (1 at or below 0). *)

val log_log_points : t -> (float * float) list
(** Positive-support points as [(x, ccdf)] pairs, suitable for log-log
    rendering; drops points with zero probability. *)
