(** Nonparametric bootstrap confidence intervals, used to put uncertainty
    bands on the per-bin improvement means reported by the experiments. *)

type interval = { estimate : float; lo : float; hi : float }

val mean_ci :
  ?replicates:int ->
  ?confidence:float ->
  Ic_prng.Rng.t ->
  float array ->
  interval
(** Percentile bootstrap CI for the mean (default 1000 replicates, 95%
    confidence). Raises [Invalid_argument] on empty input or confidence
    outside (0, 1). *)

val quantile_ci :
  ?replicates:int ->
  ?confidence:float ->
  Ic_prng.Rng.t ->
  q:float ->
  float array ->
  interval
(** Same for an arbitrary quantile. *)

val ci_of :
  ?replicates:int ->
  ?confidence:float ->
  Ic_prng.Rng.t ->
  (float array -> float) ->
  float array ->
  interval
(** Generic percentile bootstrap for any statistic. *)
