(** Kolmogorov–Smirnov distance between a sample and a reference CDF. *)

val distance : float array -> (float -> float) -> float
(** [distance sample cdf] is [sup_x |F_n(x) - cdf x|] evaluated at the sample
    points (where the supremum of the step-vs-continuous difference is
    attained). Raises [Invalid_argument] on empty input. *)

val two_sample : float array -> float array -> float
(** Two-sample KS distance between empirical CDFs. *)
