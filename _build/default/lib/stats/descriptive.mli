(** Descriptive statistics over float arrays. All functions raise
    [Invalid_argument] on empty input unless stated otherwise. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (denominator [n-1]); 0 for singleton input. *)

val stddev : float array -> float

val min : float array -> float

val max : float array -> float

val median : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [[0,1]], linear interpolation between order
    statistics. Does not modify its input. *)

val summary : float array -> string
(** One-line [n/mean/sd/min/median/max] rendering for reports. *)

type histogram = { edges : float array; counts : int array }
(** [edges] has length [bins + 1]; [counts.(k)] covers
    [edges.(k) <= x < edges.(k+1)] (last bin right-closed). *)

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram (default 20 bins). *)

val coefficient_of_variation : float array -> float
(** [stddev / mean]; raises if the mean is zero. *)
