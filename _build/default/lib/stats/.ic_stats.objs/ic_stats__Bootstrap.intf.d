lib/stats/bootstrap.mli: Ic_prng
