lib/stats/descriptive.mli:
