lib/stats/ks.mli:
