lib/stats/corr.ml: Array Descriptive
