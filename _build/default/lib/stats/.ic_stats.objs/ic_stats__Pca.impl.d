lib/stats/pca.ml: Array Ic_linalg
