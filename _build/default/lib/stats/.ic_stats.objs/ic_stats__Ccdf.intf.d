lib/stats/ccdf.mli:
