lib/stats/bootstrap.ml: Array Descriptive Ic_prng
