lib/stats/corr.mli:
