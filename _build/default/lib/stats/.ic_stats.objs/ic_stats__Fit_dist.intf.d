lib/stats/fit_dist.mli:
