lib/stats/fit_dist.ml: Array Ccdf Descriptive Float Ks
