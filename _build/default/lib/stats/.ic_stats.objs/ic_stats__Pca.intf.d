lib/stats/pca.mli: Ic_linalg
