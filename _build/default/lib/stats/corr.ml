let pearson x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Corr.pearson: length mismatch";
  if n < 2 then invalid_arg "Corr.pearson: need at least two points";
  let mx = Descriptive.mean x and my = Descriptive.mean y in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. || !syy = 0. then
    invalid_arg "Corr.pearson: zero variance input";
  !sxy /. sqrt (!sxx *. !syy)

let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    (* find the extent of the tie group starting at !i *)
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      r.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  r

let spearman x y = pearson (ranks x) (ranks y)
