let check_inputs name ~activity ~preference =
  let n = Array.length preference in
  if Array.length activity <> n then
    invalid_arg (Printf.sprintf "Model.%s: dimension mismatch" name);
  if Array.exists (fun x -> x < 0.) activity then
    invalid_arg (Printf.sprintf "Model.%s: negative activity" name);
  if Array.exists (fun x -> x < 0.) preference then
    invalid_arg (Printf.sprintf "Model.%s: negative preference" name);
  n

let normalized name preference =
  let s = Ic_linalg.Vec.sum preference in
  if s <= 0. then invalid_arg (Printf.sprintf "Model.%s: zero preference" name);
  Ic_linalg.Vec.scale (1. /. s) preference

let simplified ~f ~activity ~preference =
  if f < 0. || f > 1. then invalid_arg "Model.simplified: f out of [0,1]";
  let n = check_inputs "simplified" ~activity ~preference in
  let p = normalized "simplified" preference in
  Ic_traffic.Tm.init n (fun i j ->
      (f *. activity.(i) *. p.(j)) +. ((1. -. f) *. activity.(j) *. p.(i)))

let general ~f_matrix ~activity ~preference =
  let n = check_inputs "general" ~activity ~preference in
  let rows, cols = Ic_linalg.Mat.dims f_matrix in
  if rows <> n || cols <> n then
    invalid_arg "Model.general: f_matrix dimension mismatch";
  let p = normalized "general" preference in
  Ic_traffic.Tm.init n (fun i j ->
      let fij = Ic_linalg.Mat.get f_matrix i j in
      let fji = Ic_linalg.Mat.get f_matrix j i in
      (fij *. activity.(i) *. p.(j))
      +. ((1. -. fji) *. activity.(j) *. p.(i)))

let stable_fp (params : Params.stable_fp) binning =
  let tms =
    Array.map
      (fun activity ->
        simplified ~f:params.f ~activity ~preference:params.preference)
      params.activity
  in
  Ic_traffic.Series.make binning tms

let stable_f (params : Params.stable_f) binning =
  let tms =
    Array.mapi
      (fun k activity ->
        simplified ~f:params.f ~activity ~preference:params.preference.(k))
      params.activity
  in
  Ic_traffic.Series.make binning tms

let time_varying (params : Params.time_varying) binning =
  let tms =
    Array.mapi
      (fun k activity ->
        simplified ~f:params.f.(k) ~activity
          ~preference:params.preference.(k))
      params.activity
  in
  Ic_traffic.Series.make binning tms

let predicted_ingress ~f ~activity ~preference =
  let n = check_inputs "predicted_ingress" ~activity ~preference in
  let p = normalized "predicted_ingress" preference in
  let s = Ic_linalg.Vec.sum activity in
  Array.init n (fun i -> (f *. activity.(i)) +. ((1. -. f) *. p.(i) *. s))

let predicted_egress ~f ~activity ~preference =
  let n = check_inputs "predicted_egress" ~activity ~preference in
  let p = normalized "predicted_egress" preference in
  let s = Ic_linalg.Vec.sum activity in
  Array.init n (fun j -> (f *. p.(j) *. s) +. ((1. -. f) *. activity.(j)))

(* Section 3's example: equal forward/reverse volumes (f = 1/2), uniform
   responder preference, activities 600/12/6 total connection bytes. *)
let fig2_example () =
  simplified ~f:0.5 ~activity:[| 600.; 12.; 6. |]
    ~preference:[| 1.; 1.; 1. |]

let conditional_egress tm ~egress ~ingress =
  let row = (Ic_traffic.Marginals.ingress tm).(ingress) in
  if row <= 0. then
    invalid_arg "Model.conditional_egress: node originates no traffic";
  Ic_traffic.Tm.get tm ingress egress /. row

let marginal_egress tm ~egress =
  let tot = Ic_traffic.Tm.total tm in
  if tot <= 0. then invalid_arg "Model.marginal_egress: empty TM";
  (Ic_traffic.Marginals.egress tm).(egress) /. tot
