(** Forward evaluation of the IC model family: produce traffic matrices from
    parameters (paper Equations 1–5). *)

val simplified :
  f:float ->
  activity:Ic_linalg.Vec.t ->
  preference:Ic_linalg.Vec.t ->
  Ic_traffic.Tm.t
(** Equation 2 for one bin:
    [X_ij = f A_i P_j / sum P + (1 - f) A_j P_i / sum P].
    The preference vector is normalized internally, so unnormalized
    preferences are accepted. Raises [Invalid_argument] on dimension
    mismatch, [f] outside [[0,1]], negative inputs or an all-zero
    preference. *)

val general :
  f_matrix:Ic_linalg.Mat.t ->
  activity:Ic_linalg.Vec.t ->
  preference:Ic_linalg.Vec.t ->
  Ic_traffic.Tm.t
(** Equation 1 for one bin, with per-OD forward fractions:
    [X_ij = f_ij A_i P_j / sum P + (1 - f_ji) A_j P_i / sum P]. *)

val stable_fp :
  Params.stable_fp -> Ic_timeseries.Timebin.t -> Ic_traffic.Series.t
(** Equation 5 across bins. *)

val stable_f :
  Params.stable_f -> Ic_timeseries.Timebin.t -> Ic_traffic.Series.t
(** Equation 4 across bins. *)

val time_varying :
  Params.time_varying -> Ic_timeseries.Timebin.t -> Ic_traffic.Series.t
(** Equation 3 across bins. *)

(** {2 Identities}

    These are the marginal identities (with normalized preferences,
    [S = sum_j A_j]) used by the closed-form estimators and exercised by the
    property tests. *)

val predicted_ingress :
  f:float -> activity:Ic_linalg.Vec.t -> preference:Ic_linalg.Vec.t ->
  Ic_linalg.Vec.t
(** [X_i* = f A_i + (1 - f) P_i S]. *)

val predicted_egress :
  f:float -> activity:Ic_linalg.Vec.t -> preference:Ic_linalg.Vec.t ->
  Ic_linalg.Vec.t
(** [X_*j = f P_j S + (1 - f) A_j]. *)

(** {2 The paper's worked example}

    Section 3's three-node network (Figure 2): A initiates 3 connections of
    100 packets each way, B 3 of 2 packets, C 3 of 1 packet, responders
    uniform. Used to demonstrate that packet-level ingress/egress
    independence fails even though connections are independent. *)

val fig2_example : unit -> Ic_traffic.Tm.t
(** The resulting 3x3 packet-count matrix
    ([X_AA = 200], [X_AB = 102], ...). *)

val conditional_egress : Ic_traffic.Tm.t -> egress:int -> ingress:int -> float
(** [P(E = j | I = i)] under the TM's empirical distribution. *)

val marginal_egress : Ic_traffic.Tm.t -> egress:int -> float
(** [P(E = j)]. *)
