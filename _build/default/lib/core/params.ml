type stable_fp = {
  f : float;
  preference : Ic_linalg.Vec.t;
  activity : Ic_linalg.Vec.t array;
}

type stable_f = {
  f : float;
  preference : Ic_linalg.Vec.t array;
  activity : Ic_linalg.Vec.t array;
}

type time_varying = {
  f : float array;
  preference : Ic_linalg.Vec.t array;
  activity : Ic_linalg.Vec.t array;
}

type general = {
  f_matrix : Ic_linalg.Mat.t;
  preference : Ic_linalg.Vec.t;
  activity : Ic_linalg.Vec.t;
}

let ( let* ) = Result.bind

let check_f f = if f < 0. || f > 1. || Float.is_nan f then Error "f out of [0,1]" else Ok ()

let check_nonneg name v =
  if Array.exists (fun x -> x < 0. || Float.is_nan x) v then
    Error (name ^ " has negative or NaN entries")
  else Ok ()

let normalize_preference p =
  let* () = check_nonneg "preference" p in
  let s = Ic_linalg.Vec.sum p in
  if s <= 0. then Error "preference sums to zero"
  else Ok (Ic_linalg.Vec.scale (1. /. s) p)

let check_activity n activity =
  if Array.length activity = 0 then Error "no activity bins"
  else begin
    let bad =
      Array.exists (fun a -> Array.length a <> n) activity
    in
    if bad then Error "activity dimension mismatch"
    else
      Array.fold_left
        (fun acc a -> Result.bind acc (fun () -> check_nonneg "activity" a))
        (Ok ()) activity
  end

let validate_stable_fp (p : stable_fp) =
  let n = Array.length p.preference in
  let* () = check_f p.f in
  let* preference = normalize_preference p.preference in
  let* () = check_activity n p.activity in
  Ok { p with preference }

let validate_stable_f (p : stable_f) =
  let* () = check_f p.f in
  if Array.length p.preference <> Array.length p.activity then
    Error "preference/activity bin count mismatch"
  else if Array.length p.activity = 0 then Error "no activity bins"
  else begin
    let n = Array.length p.preference.(0) in
    let* () = check_activity n p.activity in
    let rec normalize_all k acc =
      if k < 0 then Ok acc
      else
        let* pk = normalize_preference p.preference.(k) in
        normalize_all (k - 1) (pk :: acc)
    in
    let* prefs = normalize_all (Array.length p.preference - 1) [] in
    Ok { p with preference = Array.of_list prefs }
  end

let validate_time_varying (p : time_varying) =
  if
    Array.length p.f <> Array.length p.activity
    || Array.length p.preference <> Array.length p.activity
  then Error "bin count mismatch across f/preference/activity"
  else begin
    let* () =
      Array.fold_left
        (fun acc f -> Result.bind acc (fun () -> check_f f))
        (Ok ()) p.f
    in
    let* validated =
      validate_stable_f { f = 0.; preference = p.preference; activity = p.activity }
    in
    Ok { p with preference = validated.preference }
  end

let validate_general (p : general) =
  let n = Array.length p.preference in
  let rows, cols = Ic_linalg.Mat.dims p.f_matrix in
  if rows <> n || cols <> n then Error "f_matrix dimension mismatch"
  else begin
    let bad = ref false in
    Ic_linalg.Mat.fold
      (fun () x -> if x < 0. || x > 1. || Float.is_nan x then bad := true)
      () p.f_matrix;
    if !bad then Error "f_matrix entries out of [0,1]"
    else
      let* preference = normalize_preference p.preference in
      let* () = check_nonneg "activity" p.activity in
      if Array.length p.activity <> n then Error "activity dimension mismatch"
      else Ok { p with preference }
  end

let bins (p : stable_fp) = Array.length p.activity

let nodes (p : stable_fp) = Array.length p.preference

let dof_gravity ~n ~t = (2 * n * t) - 1

let dof_time_varying ~n ~t = 3 * n * t

let dof_stable_f ~n ~t = (2 * n * t) + 1

let dof_stable_fp ~n ~t = (n * t) + n + 1
