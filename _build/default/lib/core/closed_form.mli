(** Closed-form activity and preference estimates from marginal counts when
    only [f] is known (paper Section 6.3, Equations 11–12).

    Eliminating [P_i] (respectively [A_i]) between the two marginal
    identities yields, writing [in_i] for the ingress count [X_i.] and
    [out_i] for the egress count [X_.i]:

    - [A_i = (f in_i - (1 - f) out_i) / (2f - 1)]      (Equation 11)
    - [P_i propto (f out_i - (1 - f) in_i) / (2f - 1)] (Equation 12)

    The system degenerates at [f = 1/2], where forward and reverse traffic
    are indistinguishable from marginals alone. *)

type estimate = {
  activity : Ic_linalg.Vec.t;  (** clamped non-negative *)
  preference : Ic_linalg.Vec.t;  (** clamped, normalized to sum 1 *)
}

val estimate :
  f:float ->
  ingress:Ic_linalg.Vec.t ->
  egress:Ic_linalg.Vec.t ->
  (estimate, [ `F_near_half ]) result
(** Per-bin closed-form estimates. Returns [Error `F_near_half] when
    [|2f - 1| < 1e-6]. Negative raw values (possible under noise) are
    clamped to zero; if the clamped preference vector is all-zero it falls
    back to the egress shares. *)

val prior_series :
  f:float -> Ic_traffic.Series.t -> Ic_traffic.Series.t
(** Build a stable-f prior series: for each bin, estimate activities and
    preferences from that bin's marginals and evaluate the model. Raises
    [Invalid_argument] when [f] is too close to 1/2. *)
