module Vec = Ic_linalg.Vec
module Tm = Ic_traffic.Tm
module Series = Ic_traffic.Series

type options = { max_iters : int; tol : float; f_init : float }

let default_options = { max_iters = 500; tol = 1e-8; f_init = 0.25 }

type result = {
  params : Params.stable_fp;
  objective : float;
  per_bin_error : float array;
  mean_error : float;
  iterations : int;
}

type state = { f : float; p : Vec.t; a : Vec.t array }

(* weighted squared residual objective: sum_t ||Xhat(t) - X(t)||^2 / ||X(t)||^2 *)
let objective tms weights st =
  let n = Array.length st.p in
  let acc = ref 0. in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let at = st.a.(t) in
        let xd = Tm.unsafe_data tm in
        for i = 0 to n - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            let pred =
              (st.f *. at.(i) *. st.p.(j))
              +. ((1. -. st.f) *. at.(j) *. st.p.(i))
            in
            let r = pred -. Array.unsafe_get xd (base + j) in
            acc := !acc +. (w *. r *. r)
          done
        done
      end)
    tms;
  !acc

(* gradients of the objective with respect to each block *)
let grad_a tms weights st t =
  let n = Array.length st.p in
  let at = st.a.(t) in
  let g = Vec.create n in
  let w = weights.(t) in
  if w > 0. then begin
    let xd = Tm.unsafe_data tms.(t) in
    for i = 0 to n - 1 do
      let base = i * n in
      for j = 0 to n - 1 do
        let pred =
          (st.f *. at.(i) *. st.p.(j)) +. ((1. -. st.f) *. at.(j) *. st.p.(i))
        in
        let r = 2. *. w *. (pred -. Array.unsafe_get xd (base + j)) in
        g.(i) <- g.(i) +. (r *. st.f *. st.p.(j));
        g.(j) <- g.(j) +. (r *. (1. -. st.f) *. st.p.(i))
      done
    done
  end;
  g

let grad_p tms weights st =
  let n = Array.length st.p in
  let g = Vec.create n in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let at = st.a.(t) in
        let xd = Tm.unsafe_data tm in
        for i = 0 to n - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            let pred =
              (st.f *. at.(i) *. st.p.(j))
              +. ((1. -. st.f) *. at.(j) *. st.p.(i))
            in
            let r = 2. *. w *. (pred -. Array.unsafe_get xd (base + j)) in
            g.(j) <- g.(j) +. (r *. st.f *. at.(i));
            g.(i) <- g.(i) +. (r *. (1. -. st.f) *. at.(j))
          done
        done
      end)
    tms;
  g

let grad_f tms weights st =
  let n = Array.length st.p in
  let acc = ref 0. in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let at = st.a.(t) in
        let xd = Tm.unsafe_data tm in
        for i = 0 to n - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            let pred =
              (st.f *. at.(i) *. st.p.(j))
              +. ((1. -. st.f) *. at.(j) *. st.p.(i))
            in
            let r = 2. *. w *. (pred -. Array.unsafe_get xd (base + j)) in
            acc := !acc +. (r *. ((at.(i) *. st.p.(j)) -. (at.(j) *. st.p.(i))))
          done
        done
      end)
    tms;
  !acc

(* backtracking step on one block: try the update at [step], halving until
   the objective decreases; returns the accepted state and step (possibly
   unchanged if no decrease was found). *)
let backtrack ~apply ~current ~step tms weights =
  let base = objective tms weights current in
  let rec go step tries =
    if tries = 0 then (current, step, base)
    else begin
      let candidate = apply step in
      let value = objective tms weights candidate in
      if value < base then (candidate, step, value) else go (step /. 2.) (tries - 1)
    end
  in
  go step 14

let fit_stable_fp ?(options = default_options) series =
  let t_count = Series.length series in
  let tms = Array.init t_count (Series.tm series) in
  let norms = Array.map (fun tm -> Vec.nrm2 (Tm.unsafe_data tm)) tms in
  let weights =
    Array.map (fun nrm -> if nrm > 0. then 1. /. (nrm *. nrm) else 0.) norms
  in
  (* initialization mirrors Fit: closed-form preferences, activities from
     one exact least-squares pass at f_init *)
  let n = Series.size series in
  let ingress = Vec.create n and egress = Vec.create n in
  Array.iter
    (fun tm ->
      Vec.axpy 1. (Ic_traffic.Marginals.ingress tm) ingress;
      Vec.axpy 1. (Ic_traffic.Marginals.egress tm) egress)
    tms;
  let p0 =
    match Closed_form.estimate ~f:options.f_init ~ingress ~egress with
    | Ok e -> Vec.normalize_sum (Vec.map (fun x -> Float.max x 1e-12) e.preference)
    | Error `F_near_half -> Array.make n (1. /. float_of_int n)
  in
  let a0 =
    Array.map
      (fun tm ->
        let i = Ic_traffic.Marginals.ingress tm in
        let e = Ic_traffic.Marginals.egress tm in
        match Closed_form.estimate ~f:options.f_init ~ingress:i ~egress:e with
        | Ok est -> est.activity
        | Error `F_near_half -> i)
      tms
  in
  let st = ref { f = options.f_init; p = p0; a = a0 } in
  let steps = ref (1e-2, 1e-2, 1e-2) (* per-block step memory: a, p, f *) in
  let prev = ref (objective tms weights !st) in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < options.max_iters do
    incr iters;
    let sa, sp, sf = !steps in
    (* The gradient at the current state is invariant across backtracking
       tries (only the step length changes), so each block computes it once
       outside its [apply] closure. *)
    (* activity block: per-bin gradient steps with a shared relative step *)
    let ga = Array.mapi (fun t _ -> grad_a tms weights !st t) !st.a in
    let st1, sa', _ =
      backtrack
        ~apply:(fun step ->
          let a =
            Array.mapi
              (fun t at ->
                let g = ga.(t) in
                let scale = Float.max (Vec.amax at) 1. in
                let gmax = Float.max (Vec.amax g) 1e-300 in
                let eta = step *. scale /. gmax in
                Vec.clamp_nonneg
                  (Array.mapi (fun k x -> x -. (eta *. g.(k))) at))
              !st.a
          in
          { !st with a })
        ~current:!st ~step:(Float.min (sa *. 2.) 1.) tms weights
    in
    st := st1;
    (* preference block *)
    let gp = grad_p tms weights !st in
    let st2, sp', _ =
      backtrack
        ~apply:(fun step ->
          let gmax = Float.max (Vec.amax gp) 1e-300 in
          let eta = step /. gmax in
          let p =
            Ic_linalg.Proj.simplex
              (Array.mapi (fun k x -> x -. (eta *. gp.(k))) !st.p)
          in
          { !st with p })
        ~current:!st ~step:(Float.min (sp *. 2.) 1.) tms weights
    in
    st := st2;
    (* forward-fraction block, kept in the physical branch *)
    let gf = grad_f tms weights !st in
    let st3, sf', value =
      backtrack
        ~apply:(fun step ->
          let eta = step /. Float.max (Float.abs gf) 1e-300 in
          {
            !st with
            f = Ic_linalg.Proj.box ~lo:0. ~hi:0.5 (!st.f -. (eta *. gf));
          })
        ~current:!st ~step:(Float.min (sf *. 2.) 0.5) tms weights
    in
    st := st3;
    steps := (sa', sp', sf');
    if !prev -. value <= options.tol *. Float.max !prev 1e-12 then
      continue_ := false;
    prev := value
  done;
  let model_err t =
    if norms.(t) <= 0. then 0.
    else begin
      let at = !st.a.(t) in
      let pred =
        Tm.init (Array.length !st.p) (fun i j ->
            (!st.f *. at.(i) *. !st.p.(j))
            +. ((1. -. !st.f) *. at.(j) *. !st.p.(i)))
      in
      Vec.nrm2_diff (Tm.unsafe_data tms.(t)) (Tm.unsafe_data pred) /. norms.(t)
    end
  in
  let per_bin_error = Array.init t_count model_err in
  let mean_error =
    if t_count = 0 then 0.
    else Vec.sum per_bin_error /. float_of_int t_count
  in
  {
    params = { f = !st.f; preference = !st.p; activity = !st.a };
    objective = !prev;
    per_bin_error;
    mean_error;
    iterations = !iters;
  }
