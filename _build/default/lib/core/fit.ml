module Vec = Ic_linalg.Vec
module Mat = Ic_linalg.Mat
module Ws = Ic_linalg.Workspace
module Tm = Ic_traffic.Tm
module Series = Ic_traffic.Series

type kernel = Naive | Workspace

type options = {
  max_sweeps : int;
  tol : float;
  f_init : float;
  fixed_f : bool;
  f_bounds : float * float;
}

let default_options =
  {
    max_sweeps = 40;
    tol = 1e-6;
    f_init = 0.25;
    fixed_f = false;
    f_bounds = (0., 1.);
  }

type 'p fitted = {
  params : 'p;
  per_bin_error : float array;
  mean_error : float;
  sweeps : int;
}

(* Solve the normal-equation system G x = c under x >= 0. The unconstrained
   solution is usually feasible here (activities and preferences are interior
   for realistic traffic), so try a plain Cholesky solve first and fall back
   to Lawson-Hanson only when it goes negative. *)
let solve_nonneg g c =
  let feasible x = Array.for_all (fun v -> v >= -1e-9 *. (1. +. Float.abs v)) x in
  match Ic_linalg.Chol.factorize g with
  | Ok ch ->
      let x = Ic_linalg.Chol.solve ch c in
      if feasible x then Vec.clamp_nonneg x
      else Ic_linalg.Nnls.solve_gram g c
  | Error (`Not_positive_definite _) -> Ic_linalg.Nnls.solve_gram g c

(* Activity subproblem for one bin: accumulate Gram/right-hand side of the
   n^2 x n design whose row (i,j) has f*p_j at column i and (1-f)*p_i at
   column j (column i gets the full p_i when i = j). *)
let solve_activity ~f ~p tm =
  let n = Array.length p in
  let g = Mat.create n n in
  let c = Vec.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = Tm.get tm i j in
      if i = j then begin
        Mat.update g i i (fun v -> v +. (p.(i) *. p.(i)));
        c.(i) <- c.(i) +. (p.(i) *. x)
      end
      else begin
        let a = f *. p.(j) and b = (1. -. f) *. p.(i) in
        Mat.update g i i (fun v -> v +. (a *. a));
        Mat.update g j j (fun v -> v +. (b *. b));
        Mat.update g i j (fun v -> v +. (a *. b));
        Mat.update g j i (fun v -> v +. (a *. b));
        c.(i) <- c.(i) +. (a *. x);
        c.(j) <- c.(j) +. (b *. x)
      end
    done
  done;
  solve_nonneg g c

(* Preference subproblem: same structure with the roles of A and P swapped;
   accumulated across bins with weights w.(t), then solved once. *)
let solve_preference ~f ~activities ~weights tms =
  let n = Array.length activities.(0) in
  let g = Mat.create n n in
  let c = Vec.create n in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let a_t = activities.(t) in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let x = Tm.get tm i j in
            if i = j then begin
              Mat.update g i i (fun v -> v +. (w *. a_t.(i) *. a_t.(i)));
              c.(i) <- c.(i) +. (w *. a_t.(i) *. x)
            end
            else begin
              let a = f *. a_t.(i) and b = (1. -. f) *. a_t.(j) in
              Mat.update g j j (fun v -> v +. (w *. a *. a));
              Mat.update g i i (fun v -> v +. (w *. b *. b));
              Mat.update g i j (fun v -> v +. (w *. a *. b));
              Mat.update g j i (fun v -> v +. (w *. a *. b));
              c.(j) <- c.(j) +. (w *. a *. x);
              c.(i) <- c.(i) +. (w *. b *. x)
            end
          done
        done
      end)
    tms;
  solve_nonneg g c

(* Workspace kernels: the same subproblems with the Gram matrix,
   right-hand side and Cholesky factor living in a workspace hoisted
   outside the sweep loop, and flat-indexed accumulation instead of
   [Mat.update] closures. Accumulation and solve order match the naive
   kernels operation for operation, so both produce bit-identical
   results — the naive kernels stay as the golden reference. *)

let solve_nonneg_ws ws g c =
  let feasible x = Array.for_all (fun v -> v >= -1e-9 *. (1. +. Float.abs v)) x in
  let n, _ = Mat.dims g in
  let l = Ws.mat ws "fit.chol" n n in
  match Ic_linalg.Chol.factorize_into ~l g with
  | Ok ch ->
      let x = Array.copy c in
      Ic_linalg.Chol.solve_into ch x;
      if feasible x then Vec.clamp_nonneg x
      else Ic_linalg.Nnls.solve_gram g c
  | Error (`Not_positive_definite _) -> Ic_linalg.Nnls.solve_gram g c

let solve_activity_ws ws ~f ~p tm =
  let n = Array.length p in
  let g = Ws.zero_mat ws "fit.g" n n in
  let c = Ws.zero_vec ws "fit.c" n in
  let gd = g.Mat.data in
  let xd = Tm.unsafe_data tm in
  for i = 0 to n - 1 do
    let base = i * n in
    for j = 0 to n - 1 do
      let x = Array.unsafe_get xd (base + j) in
      if i = j then begin
        gd.(base + i) <- gd.(base + i) +. (p.(i) *. p.(i));
        c.(i) <- c.(i) +. (p.(i) *. x)
      end
      else begin
        let a = f *. p.(j) and b = (1. -. f) *. p.(i) in
        gd.(base + i) <- gd.(base + i) +. (a *. a);
        gd.((j * n) + j) <- gd.((j * n) + j) +. (b *. b);
        gd.(base + j) <- gd.(base + j) +. (a *. b);
        gd.((j * n) + i) <- gd.((j * n) + i) +. (a *. b);
        c.(i) <- c.(i) +. (a *. x);
        c.(j) <- c.(j) +. (b *. x)
      end
    done
  done;
  solve_nonneg_ws ws g c

let solve_preference_ws ws ~f ~activities ~weights tms =
  let n = Array.length activities.(0) in
  let g = Ws.zero_mat ws "fit.g" n n in
  let c = Ws.zero_vec ws "fit.c" n in
  let gd = g.Mat.data in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let a_t = activities.(t) in
        let xd = Tm.unsafe_data tm in
        for i = 0 to n - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            let x = Array.unsafe_get xd (base + j) in
            if i = j then begin
              gd.(base + i) <- gd.(base + i) +. (w *. a_t.(i) *. a_t.(i));
              c.(i) <- c.(i) +. (w *. a_t.(i) *. x)
            end
            else begin
              let a = f *. a_t.(i) and b = (1. -. f) *. a_t.(j) in
              gd.((j * n) + j) <- gd.((j * n) + j) +. (w *. a *. a);
              gd.(base + i) <- gd.(base + i) +. (w *. b *. b);
              gd.(base + j) <- gd.(base + j) +. (w *. a *. b);
              gd.((j * n) + i) <- gd.((j * n) + i) +. (w *. a *. b);
              c.(j) <- c.(j) +. (w *. a *. x);
              c.(i) <- c.(i) +. (w *. b *. x)
            end
          done
        done
      end)
    tms;
  solve_nonneg_ws ws g c

(* One fit run binds its kernel pair once; the workspace pair shares one
   buffer pool across all bins and sweeps of that run. *)
type kernels = {
  k_activity : f:float -> p:Vec.t -> Tm.t -> Vec.t;
  k_preference :
    f:float -> activities:Vec.t array -> weights:Vec.t -> Tm.t array -> Vec.t;
}

let make_kernels = function
  | Naive ->
      { k_activity = solve_activity; k_preference = solve_preference }
  | Workspace ->
      let ws = Ws.create () in
      {
        k_activity = (fun ~f ~p tm -> solve_activity_ws ws ~f ~p tm);
        k_preference =
          (fun ~f ~activities ~weights tms ->
            solve_preference_ws ws ~f ~activities ~weights tms);
      }

(* Forward-fraction subproblem: X_ij = f (A_i p_j - A_j p_i) + A_j p_i is
   linear in f; weighted scalar least squares, clamped into [0,1]. *)
let solve_f ~bounds:(f_lo, f_hi) ~activities ~preferences ~weights tms =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun t tm ->
      let w = weights.(t) in
      if w > 0. then begin
        let a_t = activities.(t) and p = preferences t in
        let n = Array.length a_t in
        let xd = Tm.unsafe_data tm in
        for i = 0 to n - 1 do
          let base = i * n in
          for j = 0 to n - 1 do
            if i <> j then begin
              let slope = (a_t.(i) *. p.(j)) -. (a_t.(j) *. p.(i)) in
              let base_flow = a_t.(j) *. p.(i) in
              let x = Array.unsafe_get xd (base + j) in
              num := !num +. (w *. slope *. (x -. base_flow));
              den := !den +. (w *. slope *. slope)
            end
          done
        done
      end)
    tms;
  if !den <= 0. then None
  else Some (Ic_linalg.Proj.box ~lo:f_lo ~hi:f_hi (!num /. !den))

let bin_norms tms = Array.map (fun tm -> Vec.nrm2 (Tm.unsafe_data tm)) tms

let weights_of_norms norms =
  Array.map (fun nrm -> if nrm > 0. then 1. /. (nrm *. nrm) else 0.) norms

let model_tm ~f ~activity ~p =
  let n = Array.length p in
  Tm.init n (fun i j ->
      (f *. activity.(i) *. p.(j)) +. ((1. -. f) *. activity.(j) *. p.(i)))

let rel_l2 tm model norm =
  if norm <= 0. then 0.
  else Vec.nrm2_diff (Tm.unsafe_data tm) (Tm.unsafe_data model) /. norm

(* Surrogate objective: sum of squared relative errors. *)
let surrogate ~f ~activities ~preferences norms tms =
  let acc = ref 0. in
  Array.iteri
    (fun t tm ->
      let e = rel_l2 tm (model_tm ~f ~activity:activities.(t) ~p:(preferences t)) norms.(t) in
      acc := !acc +. (e *. e))
    tms;
  !acc

let normalize_preference_and_rescale p activities =
  let s = Vec.sum p in
  if s <= 0. then (p, activities)
  else begin
    let p' = Vec.scale (1. /. s) p in
    let activities' = Array.map (Vec.scale s) activities in
    (p', activities')
  end

let errors_of ~f ~activities ~preferences norms tms =
  Array.mapi
    (fun t tm ->
      rel_l2 tm (model_tm ~f ~activity:activities.(t) ~p:(preferences t)) norms.(t))
    tms

let mean_of errs =
  if Array.length errs = 0 then 0. else Vec.sum errs /. float_of_int (Array.length errs)

(* Initial preferences via the closed-form Equation 12 at the starting f:
   egress shares alone are dominated by the activity shape when f < 1/2 and
   would start the descent inside the mirrored basin (see pick_basin). *)
let initial_preference ~f_init tms =
  let n = Tm.size tms.(0) in
  let ingress = Vec.create n and egress = Vec.create n in
  Array.iter
    (fun tm ->
      Vec.axpy 1. (Ic_traffic.Marginals.ingress tm) ingress;
      Vec.axpy 1. (Ic_traffic.Marginals.egress tm) egress)
    tms;
  let fallback () =
    let total = Vec.sum egress in
    if total > 0. then
      Vec.normalize_sum (Vec.map (fun x -> Float.max x 1e-12) egress)
    else Array.make n (1. /. float_of_int n)
  in
  match Closed_form.estimate ~f:f_init ~ingress ~egress with
  | Ok e ->
      Vec.normalize_sum
        (Vec.map (fun x -> Float.max x 1e-12) e.Closed_form.preference)
  | Error `F_near_half -> fallback ()
  | exception Invalid_argument _ -> fallback ()

let fit_stable_fp_single ~kernels ~options series =
  let tms = Array.init (Series.length series) (Series.tm series) in
  let norms = bin_norms tms in
  let weights = weights_of_norms norms in
  let f = ref options.f_init in
  let p = ref (initial_preference ~f_init:options.f_init tms) in
  let activities =
    ref (Array.map (fun tm -> kernels.k_activity ~f:!f ~p:!p tm) tms)
  in
  let prev = ref infinity in
  let sweeps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !sweeps < options.max_sweeps do
    incr sweeps;
    activities := Array.map (fun tm -> kernels.k_activity ~f:!f ~p:!p tm) tms;
    let p_raw = kernels.k_preference ~f:!f ~activities:!activities ~weights tms in
    let p', acts' = normalize_preference_and_rescale p_raw !activities in
    p := p';
    activities := acts';
    (if not options.fixed_f then
       match
         solve_f ~bounds:options.f_bounds ~activities:!activities
           ~preferences:(fun _ -> !p) ~weights tms
       with
       | Some f' -> f := f'
       | None -> ());
    let obj =
      surrogate ~f:!f ~activities:!activities ~preferences:(fun _ -> !p) norms
        tms
    in
    if Float.is_finite !prev && !prev -. obj <= options.tol *. Float.max !prev 1e-12 then
      continue_ := false;
    prev := obj
  done;
  let per_bin_error =
    errors_of ~f:!f ~activities:!activities ~preferences:(fun _ -> !p) norms
      tms
  in
  let params : Params.stable_fp =
    { f = !f; preference = !p; activity = !activities }
  in
  { params; per_bin_error; mean_error = mean_of per_bin_error; sweeps = !sweeps }

let fit_stable_f_single ~kernels ~options series =
  let tms = Array.init (Series.length series) (Series.tm series) in
  let norms = bin_norms tms in
  let weights = weights_of_norms norms in
  let t_count = Array.length tms in
  let f = ref options.f_init in
  let prefs = ref (Array.make t_count (initial_preference ~f_init:options.f_init tms)) in
  let activities =
    ref
      (Array.mapi
         (fun t tm ->
           let p = (!prefs).(t) in
           kernels.k_activity ~f:!f ~p tm)
         tms)
  in
  let prev = ref infinity in
  let sweeps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !sweeps < options.max_sweeps do
    incr sweeps;
    (* per-bin activity and preference given the shared f *)
    let old_prefs = !prefs in
    let acts =
      Array.mapi (fun t tm -> kernels.k_activity ~f:!f ~p:old_prefs.(t) tm) tms
    in
    let new_prefs = Array.make t_count old_prefs.(0) in
    Array.iteri
      (fun t tm ->
        if weights.(t) > 0. then begin
          let p_raw =
            kernels.k_preference ~f:!f ~activities:[| acts.(t) |]
              ~weights:[| 1. |] [| tm |]
          in
          let p', acts' = normalize_preference_and_rescale p_raw [| acts.(t) |] in
          new_prefs.(t) <- p';
          acts.(t) <- acts'.(0)
        end
        else new_prefs.(t) <- old_prefs.(t))
      tms;
    activities := acts;
    prefs := new_prefs;
    let pref_at t = (!prefs).(t) in
    (if not options.fixed_f then
       match
         solve_f ~bounds:options.f_bounds ~activities:!activities
           ~preferences:pref_at ~weights tms
       with
       | Some f' -> f := f'
       | None -> ());
    let obj =
      surrogate ~f:!f ~activities:!activities ~preferences:pref_at norms tms
    in
    if Float.is_finite !prev && !prev -. obj <= options.tol *. Float.max !prev 1e-12 then
      continue_ := false;
    prev := obj
  done;
  let pref_at t = (!prefs).(t) in
  let per_bin_error =
    errors_of ~f:!f ~activities:!activities ~preferences:pref_at norms tms
  in
  let params : Params.stable_f =
    { f = !f; preference = !prefs; activity = !activities }
  in
  { params; per_bin_error; mean_error = mean_of per_bin_error; sweeps = !sweeps }

let fit_time_varying_single ~kernels ~options series =
  let tms = Array.init (Series.length series) (Series.tm series) in
  let norms = bin_norms tms in
  let t_count = Array.length tms in
  let fs = Array.make t_count options.f_init in
  let prefs = Array.make t_count (initial_preference ~f_init:options.f_init tms) in
  let activities = Array.make t_count (Vec.create (Series.size series)) in
  let max_sweeps_total = ref 0 in
  Array.iteri
    (fun t tm ->
      (* each bin is an independent single-bin fit *)
      let w = weights_of_norms [| norms.(t) |] in
      let f = ref options.f_init in
      let p = ref (initial_preference ~f_init:options.f_init [| tm |]) in
      let act = ref (kernels.k_activity ~f:!f ~p:!p tm) in
      let prev = ref infinity in
      let sweeps = ref 0 in
      let continue_ = ref true in
      while !continue_ && !sweeps < options.max_sweeps do
        incr sweeps;
        act := kernels.k_activity ~f:!f ~p:!p tm;
        let p_raw =
          kernels.k_preference ~f:!f ~activities:[| !act |] ~weights:w [| tm |]
        in
        let p', acts' = normalize_preference_and_rescale p_raw [| !act |] in
        p := p';
        act := acts'.(0);
        (if not options.fixed_f then
           match
             solve_f ~bounds:options.f_bounds ~activities:[| !act |]
               ~preferences:(fun _ -> !p)
               ~weights:w [| tm |]
           with
           | Some f' -> f := f'
           | None -> ());
        let obj =
          surrogate ~f:!f ~activities:[| !act |]
            ~preferences:(fun _ -> !p)
            [| norms.(t) |] [| tm |]
        in
        if Float.is_finite !prev && !prev -. obj <= options.tol *. Float.max !prev 1e-12 then
          continue_ := false;
        prev := obj
      done;
      if !sweeps > !max_sweeps_total then max_sweeps_total := !sweeps;
      fs.(t) <- !f;
      prefs.(t) <- !p;
      activities.(t) <- !act)
    tms;
  let per_bin_error =
    Array.mapi
      (fun t tm ->
        rel_l2 tm
          (model_tm ~f:fs.(t) ~activity:activities.(t) ~p:prefs.(t))
          norms.(t))
      tms
  in
  let params : Params.time_varying =
    { f = fs; preference = prefs; activity = activities }
  in
  {
    params;
    per_bin_error;
    mean_error = mean_of per_bin_error;
    sweeps = !max_sweeps_total;
  }

(* The simplified IC model has a near-symmetry exchanging the roles of
   activity and preference: (f, A, P) and (1 - f, S P, A / S) produce the
   same TM whenever the activity profiles are (close to) rank one across
   (node, time). Block-coordinate descent can therefore converge into the
   mirrored basin. We run the descent from both f_init and 1 - f_init and
   keep the solution with the smaller mean RelL2, breaking near-ties (0.5%)
   toward f < 1/2 — the physically meaningful, response-dominated branch
   the paper observes throughout. *)
let pick_basin f_of a b =
  let margin = Float.max 1e-6 (0.03 *. Float.max a.mean_error b.mean_error) in
  if Float.abs (a.mean_error -. b.mean_error) <= margin then
    if f_of a.params <= f_of b.params then a else b
  else if a.mean_error < b.mean_error then a
  else b

let dual_start ~options fit f_of series =
  if options.fixed_f then fit ~options series
  else begin
    let lo_init = Float.min options.f_init (1. -. options.f_init) in
    let low =
      { options with f_init = lo_init; f_bounds = (0., 0.5) }
    in
    let high =
      { options with f_init = 1. -. lo_init; f_bounds = (0.5, 1.) }
    in
    let a = fit ~options:low series in
    let b = fit ~options:high series in
    pick_basin f_of a b
  end

let fit_stable_fp ?(options = default_options) ?(kernel = Workspace) series =
  let kernels = make_kernels kernel in
  dual_start ~options
    (fun ~options series -> fit_stable_fp_single ~kernels ~options series)
    (fun (p : Params.stable_fp) -> p.f)
    series

let fit_stable_f ?(options = default_options) ?(kernel = Workspace) series =
  let kernels = make_kernels kernel in
  dual_start ~options
    (fun ~options series -> fit_stable_f_single ~kernels ~options series)
    (fun (p : Params.stable_f) -> p.f)
    series

let fit_time_varying ?(options = default_options) ?(kernel = Workspace) series =
  let kernels = make_kernels kernel in
  (* Bins are independent; select the better basin bin by bin. *)
  let lo_init = Float.min options.f_init (1. -. options.f_init) in
  let a =
    fit_time_varying_single ~kernels
      ~options:{ options with f_init = lo_init; f_bounds = (0., 0.5) }
      series
  in
  let b =
    fit_time_varying_single ~kernels
      ~options:{ options with f_init = 1. -. lo_init; f_bounds = (0.5, 1.) }
      series
  in
  let t_count = Array.length a.per_bin_error in
  let f = Array.make t_count 0. in
  let preference = Array.make t_count [||] in
  let activity = Array.make t_count [||] in
  let per_bin_error = Array.make t_count 0. in
  for t = 0 to t_count - 1 do
    let ea = a.per_bin_error.(t) and eb = b.per_bin_error.(t) in
    let margin = Float.max 1e-6 (0.03 *. Float.max ea eb) in
    let take_a =
      if Float.abs (ea -. eb) <= margin then a.params.f.(t) <= b.params.f.(t)
      else ea < eb
    in
    let src = if take_a then a else b in
    f.(t) <- src.params.f.(t);
    preference.(t) <- src.params.preference.(t);
    activity.(t) <- src.params.activity.(t);
    per_bin_error.(t) <- src.per_bin_error.(t)
  done;
  let params : Params.time_varying = { f; preference; activity } in
  {
    params;
    per_bin_error;
    mean_error = mean_of per_bin_error;
    sweeps = Stdlib.max a.sweeps b.sweeps;
  }

let fit_general_f (params : Params.stable_fp) series =
  let n = Params.nodes params in
  let p = params.preference in
  let fm = Mat.init n n (fun i j -> if i = j then params.f else 0.) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* Unknowns u = (f_ij, f_ji); per bin two residual rows:
         X_ij - b = a u1 - b u2 and X_ji - a = -a u1 + b u2,
         with a = A_i p_j, b = A_j p_i. *)
      let g11 = ref 0. and g12 = ref 0. and g22 = ref 0. in
      let c1 = ref 0. and c2 = ref 0. in
      Array.iteri
        (fun t activity ->
          let a = activity.(i) *. p.(j) and b = activity.(j) *. p.(i) in
          let tm = Series.tm series t in
          let r1 = Tm.get tm i j -. b and r2 = Tm.get tm j i -. a in
          (* row 1: (a, -b); row 2: (-a, b) *)
          g11 := !g11 +. (2. *. a *. a);
          g22 := !g22 +. (2. *. b *. b);
          g12 := !g12 -. (2. *. a *. b);
          c1 := !c1 +. ((a *. r1) -. (a *. r2));
          c2 := !c2 +. ((b *. r2) -. (b *. r1)))
        params.activity;
      (* 2x2 solve with a tiny ridge; the system is rank-1 when activities
         are proportional across bins, in which case we fall back to the
         symmetric solution f_ij = f_ji. *)
      let det = (!g11 *. !g22) -. (!g12 *. !g12) in
      let scale = Float.max (Float.abs !g11) (Float.abs !g22) in
      if det > 1e-9 *. scale *. scale && scale > 0. then begin
        let u1 = ((!g22 *. !c1) -. (!g12 *. !c2)) /. det in
        let u2 = ((!g11 *. !c2) -. (!g12 *. !c1)) /. det in
        Mat.set fm i j (Ic_linalg.Proj.box ~lo:0. ~hi:1. u1);
        Mat.set fm j i (Ic_linalg.Proj.box ~lo:0. ~hi:1. u2)
      end
      else begin
        Mat.set fm i j params.f;
        Mat.set fm j i params.f
      end
    done
  done;
  fm

let gravity_fit series =
  let n = Series.size series in
  let tms =
    Array.init (Series.length series) (fun k ->
        let tm = Series.tm series k in
        let ing = Ic_traffic.Marginals.ingress tm in
        let egr = Ic_traffic.Marginals.egress tm in
        let tot = Tm.total tm in
        if tot <= 0. then Tm.create n
        else Tm.init n (fun i j -> ing.(i) *. egr.(j) /. tot))
  in
  Series.make series.Series.binning tms

let per_bin_error data model =
  if Series.length data <> Series.length model then
    invalid_arg "Fit.per_bin_error: length mismatch";
  Array.init (Series.length data) (fun k ->
      let tm = Series.tm data k in
      let norm = Vec.nrm2 (Tm.unsafe_data tm) in
      rel_l2 tm (Series.tm model k) norm)
