module Vec = Ic_linalg.Vec

type estimate = { activity : Vec.t; preference : Vec.t }

let estimate ~f ~ingress ~egress =
  let n = Array.length ingress in
  if Array.length egress <> n then
    invalid_arg "Closed_form.estimate: dimension mismatch";
  if f < 0. || f > 1. then invalid_arg "Closed_form.estimate: f out of [0,1]";
  let denom = (2. *. f) -. 1. in
  if Float.abs denom < 1e-6 then Error `F_near_half
  else begin
    let activity =
      Array.init n (fun i ->
          Float.max 0. (((f *. ingress.(i)) -. ((1. -. f) *. egress.(i))) /. denom))
    in
    let pref_raw =
      Array.init n (fun i ->
          Float.max 0. (((f *. egress.(i)) -. ((1. -. f) *. ingress.(i))) /. denom))
    in
    let preference =
      if Vec.sum pref_raw > 0. then Vec.normalize_sum pref_raw
      else begin
        (* all clamped away: fall back to egress shares *)
        let total = Vec.sum egress in
        if total > 0. then Vec.scale (1. /. total) egress
        else Array.make n (1. /. float_of_int n)
      end
    in
    Ok { activity; preference }
  end

let prior_series ~f series =
  let tms =
    Array.init (Ic_traffic.Series.length series) (fun k ->
        let tm = Ic_traffic.Series.tm series k in
        let ingress = Ic_traffic.Marginals.ingress tm in
        let egress = Ic_traffic.Marginals.egress tm in
        match estimate ~f ~ingress ~egress with
        | Ok { activity; preference } ->
            Model.simplified ~f ~activity ~preference
        | Error `F_near_half ->
            invalid_arg "Closed_form.prior_series: f too close to 1/2")
  in
  Ic_traffic.Series.make series.Ic_traffic.Series.binning tms
