(** Recovering activities from marginal counts when [f] and [P] are known
    (paper Section 6.2, Equations 7–9).

    With normalized preferences and [S = sum_k A_k], the stable-fP model
    implies the per-bin marginal identities

    - ingress: [X_i* = f A_i + (1 - f) P_i S]
    - egress:  [X_*j = f P_j S + (1 - f) A_j]

    which is a [2n x n] linear system [Q Phi A = (X_ingress; X_egress)]. The
    paper solves it by pseudo-inverse; we solve the equivalent least-squares
    problem with non-negativity (activities are byte volumes). *)

val design_matrix : f:float -> preference:Ic_linalg.Vec.t -> Ic_linalg.Mat.t
(** The [2n x n] matrix [Q Phi] mapping activities to (ingress; egress)
    counts. The preference vector is normalized internally. *)

val activities :
  f:float ->
  preference:Ic_linalg.Vec.t ->
  ingress:Ic_linalg.Vec.t ->
  egress:Ic_linalg.Vec.t ->
  Ic_linalg.Vec.t
(** Least-squares, non-negative estimate of one bin's activities from its
    marginal counts. *)

val prior_series :
  f:float ->
  preference:Ic_linalg.Vec.t ->
  Ic_traffic.Series.t ->
  Ic_traffic.Series.t
(** Equation 9 applied per bin of an observed series: estimate activities
    from the series' own marginals (the only part of the data this function
    reads) and evaluate the stable-fP model to produce a TM prior series. *)
