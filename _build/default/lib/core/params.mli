(** Parameter sets for the family of independent-connection models
    (paper Section 3.1, Equations 1–5).

    Conventions: [n] nodes, [t] bins. Activities are in bytes per bin;
    preferences are kept normalized to sum 1 so they can be read directly as
    responder-choice probabilities. The forward fraction [f] lies in
    [[0, 1]]. *)

type stable_fp = {
  f : float;  (** network-wide forward-traffic fraction *)
  preference : Ic_linalg.Vec.t;  (** [P_i], normalized, length n *)
  activity : Ic_linalg.Vec.t array;  (** [A_i(t)], one vector per bin *)
}
(** Equation 5: [f] and [P] stable in time, activity time-varying. *)

type stable_f = {
  f : float;
  preference : Ic_linalg.Vec.t array;  (** [P_i(t)], normalized per bin *)
  activity : Ic_linalg.Vec.t array;
}
(** Equation 4. *)

type time_varying = {
  f : float array;  (** [f(t)] *)
  preference : Ic_linalg.Vec.t array;
  activity : Ic_linalg.Vec.t array;
}
(** Equation 3. *)

type general = {
  f_matrix : Ic_linalg.Mat.t;  (** [f_ij], n x n, entries in [0,1] *)
  preference : Ic_linalg.Vec.t;
  activity : Ic_linalg.Vec.t;
}
(** Equation 1 for a single bin: per-OD-pair forward fractions, for networks
    with routing asymmetry (paper Section 5.6). *)

val validate_stable_fp : stable_fp -> (stable_fp, string) result
(** Check ranges, dimensions, and preference normalization (re-normalizing
    when the sum is positive but not 1). *)

val validate_stable_f : stable_f -> (stable_f, string) result

val validate_time_varying : time_varying -> (time_varying, string) result

val validate_general : general -> (general, string) result

val bins : stable_fp -> int

val nodes : stable_fp -> int

(** Degrees-of-freedom accounting from paper Section 5.1, used to make the
    point that the IC model fits better with fewer inputs. *)

val dof_gravity : n:int -> t:int -> int
(** [2nt - 1]. *)

val dof_time_varying : n:int -> t:int -> int
(** [3nt]. *)

val dof_stable_f : n:int -> t:int -> int
(** [2nt + 1]. *)

val dof_stable_fp : n:int -> t:int -> int
(** [nt + n + 1]. *)
