lib/core/model.ml: Array Ic_linalg Ic_traffic Params Printf
