lib/core/pgd.ml: Array Closed_form Float Ic_linalg Ic_traffic Params
