lib/core/estimate_a.ml: Array Ic_linalg Ic_traffic Model
