lib/core/synth.ml: Array Ic_linalg Ic_prng Ic_timeseries Ic_traffic Model Params
