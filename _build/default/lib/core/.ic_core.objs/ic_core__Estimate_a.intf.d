lib/core/estimate_a.mli: Ic_linalg Ic_traffic
