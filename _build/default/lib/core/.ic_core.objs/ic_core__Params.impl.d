lib/core/params.ml: Array Float Ic_linalg Result
