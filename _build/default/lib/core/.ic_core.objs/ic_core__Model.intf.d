lib/core/model.mli: Ic_linalg Ic_timeseries Ic_traffic Params
