lib/core/anomaly.mli: Ic_traffic Params
