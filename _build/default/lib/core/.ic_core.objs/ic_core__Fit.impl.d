lib/core/fit.ml: Array Closed_form Float Ic_linalg Ic_traffic Params Stdlib
