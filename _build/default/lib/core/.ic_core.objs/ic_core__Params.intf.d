lib/core/params.mli: Ic_linalg
