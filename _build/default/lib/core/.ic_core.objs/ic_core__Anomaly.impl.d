lib/core/anomaly.ml: Array Float Ic_traffic List Model Params
