lib/core/closed_form.mli: Ic_linalg Ic_traffic
