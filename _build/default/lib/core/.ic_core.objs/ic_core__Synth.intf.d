lib/core/synth.mli: Ic_linalg Ic_prng Ic_timeseries Ic_traffic Params
