lib/core/pgd.mli: Ic_traffic Params
