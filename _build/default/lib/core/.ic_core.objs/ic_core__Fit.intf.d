lib/core/fit.mli: Ic_linalg Ic_traffic Params
