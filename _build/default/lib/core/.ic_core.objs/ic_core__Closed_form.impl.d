lib/core/closed_form.ml: Array Float Ic_linalg Ic_traffic Model
