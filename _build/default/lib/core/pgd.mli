(** Projected gradient descent on the stable-fP objective — an independent
    cross-check of {!Fit}'s block-coordinate descent. Both minimize the same
    surrogate [sum_t RelL2(t)^2] over the same constraint set ([f] boxed,
    [P] on the simplex, [A >= 0]); agreeing minima from two different
    optimization families is the strongest evidence available that neither
    is stuck in an algorithm-specific artifact (the paper's fmincon results
    cannot be rerun). *)

type options = {
  max_iters : int;  (** gradient steps (default 500) *)
  tol : float;  (** relative objective-decrease stop (default 1e-8) *)
  f_init : float;  (** starting forward fraction (default 0.25) *)
}

val default_options : options

type result = {
  params : Params.stable_fp;
  objective : float;  (** final surrogate value *)
  per_bin_error : float array;  (** RelL2(t) *)
  mean_error : float;
  iterations : int;
}

val fit_stable_fp :
  ?options:options -> Ic_traffic.Series.t -> result
(** Fit by projected gradient with backtracking line search, initialized
    like {!Fit} (closed-form preferences at [f_init]). Single-branch: runs
    in the [f <= 1/2] branch only; use {!Fit} for production fitting. *)
