module Vec = Ic_linalg.Vec

type spec = {
  nodes : int;
  binning : Ic_timeseries.Timebin.t;
  bins : int;
  f : float;
  preference_mu : float;
  preference_sigma : float;
  mean_total_bytes : float;
  activity_spread : float;
  diurnal : Ic_timeseries.Diurnal.t;
  weekend_damping : float;
  noise_sigma : float;
  noise_phi : float;
}

let default_spec =
  {
    nodes = 22;
    binning = Ic_timeseries.Timebin.five_min;
    bins = Ic_timeseries.Timebin.bins_per_week Ic_timeseries.Timebin.five_min;
    f = 0.25;
    preference_mu = -4.3;
    preference_sigma = 1.7;
    mean_total_bytes = 2e9;
    activity_spread = 1.3;
    diurnal = Ic_timeseries.Diurnal.default;
    weekend_damping = 0.6;
    noise_sigma = 0.15;
    noise_phi = 0.8;
  }

type generated = { series : Ic_traffic.Series.t; truth : Params.stable_fp }

let check spec =
  if spec.nodes < 2 then invalid_arg "Synth: need at least 2 nodes";
  if spec.bins <= 0 then invalid_arg "Synth: bins must be positive";
  if spec.f < 0. || spec.f > 1. then invalid_arg "Synth: f out of [0,1]";
  if spec.mean_total_bytes <= 0. then invalid_arg "Synth: bytes must be positive"

let preferences spec rng =
  check spec;
  let raw =
    Array.init spec.nodes (fun _ ->
        Ic_prng.Sampler.lognormal rng ~mu:spec.preference_mu
          ~sigma:spec.preference_sigma)
  in
  Vec.normalize_sum raw

let activity_series spec rng =
  check spec;
  (* Heterogeneous node sizes: lognormal base shares. *)
  let bases =
    Array.init spec.nodes (fun _ ->
        Ic_prng.Sampler.lognormal rng ~mu:0. ~sigma:spec.activity_spread)
  in
  let base_total = Vec.sum bases in
  let generators =
    Array.map
      (fun base ->
        let share = base /. base_total in
        (* Per-node diurnal phase jitter of up to +-1.5 hours. *)
        let peak_jitter = Ic_prng.Rng.float_range rng (-1.5) 1.5 in
        let diurnal =
          {
            spec.diurnal with
            Ic_timeseries.Diurnal.peak_hour =
              spec.diurnal.Ic_timeseries.Diurnal.peak_hour +. peak_jitter;
          }
        in
        Ic_timeseries.Cyclo.make ~diurnal ~weekend:spec.weekend_damping
          ~noise_sigma:spec.noise_sigma ~noise_phi:spec.noise_phi
          ~base_level:(share *. spec.mean_total_bytes)
          ())
      bases
  in
  let per_node =
    Array.map
      (fun gen ->
        Ic_timeseries.Cyclo.generate gen spec.binning
          (Ic_prng.Rng.fork rng)
          ~bins:spec.bins)
      generators
  in
  Array.init spec.bins (fun t ->
      Array.init spec.nodes (fun i -> per_node.(i).(t)))

let generate spec rng =
  check spec;
  let preference = preferences spec rng in
  let activity = activity_series spec rng in
  let truth : Params.stable_fp = { f = spec.f; preference; activity } in
  let series = Model.stable_fp truth spec.binning in
  { series; truth }

let with_flash_crowd ~node ~boost (params : Params.stable_fp) =
  if boost <= 0. then invalid_arg "Synth.with_flash_crowd: boost must be positive";
  let n = Array.length params.preference in
  if node < 0 || node >= n then
    invalid_arg "Synth.with_flash_crowd: node out of range";
  let p = Array.copy params.preference in
  p.(node) <- p.(node) *. boost;
  { params with preference = Vec.normalize_sum p }

let with_application_shift ~f (params : Params.stable_fp) =
  if f < 0. || f > 1. then
    invalid_arg "Synth.with_application_shift: f out of [0,1]";
  { params with f }

let from_measured (params : Params.stable_fp) binning rng ~weeks =
  if weeks <= 0 then invalid_arg "Synth.from_measured: weeks must be positive";
  let n = Array.length params.preference in
  let t_count = Array.length params.activity in
  let bins = weeks * Ic_timeseries.Timebin.bins_per_week binning in
  let node_series i = Array.init t_count (fun t -> params.activity.(t).(i)) in
  let per_node =
    Array.init n (fun i ->
        let fitted = Ic_timeseries.Cyclo_fit.fit binning (node_series i) in
        Ic_timeseries.Cyclo_fit.generate fitted binning
          (Ic_prng.Rng.fork rng) ~bins)
  in
  let activity =
    Array.init bins (fun t -> Array.init n (fun i -> per_node.(i).(t)))
  in
  let truth : Params.stable_fp = { params with activity } in
  { series = Model.stable_fp truth binning; truth }
