(** Synthetic traffic-matrix generation with the stable-fP IC model
    (paper Section 5.5).

    The recipe: pick an [f] in the observed 0.2–0.3 band, draw long-tailed
    preferences (lognormal, Figure 7), generate cyclo-stationary activity
    series per node, and evaluate Equation 5 at each bin. Because the
    activity inputs are causally unconstrained (unlike the gravity model's
    marginals, which must balance), they can be generated independently per
    node. *)

type spec = {
  nodes : int;
  binning : Ic_timeseries.Timebin.t;
  bins : int;
  f : float;  (** forward fraction; the paper suggests 0.2–0.3 *)
  preference_mu : float;  (** lognormal log-mean; paper MLE ~ -4.3 *)
  preference_sigma : float;  (** lognormal log-stddev; paper MLE ~ 1.7 *)
  mean_total_bytes : float;  (** target mean network-wide bytes per bin *)
  activity_spread : float;
      (** lognormal sigma of per-node base activity; larger = more node
          size inequality *)
  diurnal : Ic_timeseries.Diurnal.t;
  weekend_damping : float;
  noise_sigma : float;  (** per-bin lognormal modulation of activities *)
  noise_phi : float;  (** AR(1) coefficient of the modulation *)
}

val default_spec : spec
(** 22 nodes, 5-minute bins, one week, [f = 0.25], paper-fitted lognormal
    preferences. *)

type generated = {
  series : Ic_traffic.Series.t;
  truth : Params.stable_fp;  (** the generating parameters *)
}

val preferences : spec -> Ic_prng.Rng.t -> Ic_linalg.Vec.t
(** Draw and normalize lognormal preference values. *)

val activity_series : spec -> Ic_prng.Rng.t -> Ic_linalg.Vec.t array
(** Per-bin activity vectors: heterogeneous node bases (lognormal with
    [activity_spread]), node-specific diurnal phase jitter, AR(1) lognormal
    noise; scaled so the expected network total per bin is
    [mean_total_bytes]. *)

val generate : spec -> Ic_prng.Rng.t -> generated
(** Full recipe; deterministic given the generator state. *)

val with_flash_crowd :
  node:int -> boost:float -> Params.stable_fp -> Params.stable_fp
(** What-if transform: multiply one node's preference by [boost] and
    renormalize — the paper's suggested way to model hot spots. *)

val with_application_shift : f:float -> Params.stable_fp -> Params.stable_fp
(** What-if transform: change the forward fraction (e.g. a shift from web to
    P2P traffic raises [f]). *)

val from_measured :
  Params.stable_fp ->
  Ic_timeseries.Timebin.t ->
  Ic_prng.Rng.t ->
  weeks:int ->
  generated
(** Measure-then-generate (the paper's Section 5.4 future-work direction):
    fit a cyclo-stationary model ({!Ic_timeseries.Cyclo_fit}) to each node's
    measured activity series, then synthesize [weeks] fresh weeks of
    activities with the same daily profile, weekend damping and residual
    AR(1) structure, keeping the measured [f] and preferences. Raises
    [Invalid_argument] when the measured activities span less than one
    day. *)
