#!/bin/sh
# One-command tier-1 gate: build, full test suite, bench smoke.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke =="
dune exec bench/main.exe -- --json /dev/null

echo "check.sh: all green"
