#!/bin/sh
# One-command tier-1 gate: build, full test suite, bench smoke.
# The parallel layer is exercised at both pool sizes: --jobs 1 (the pure
# sequential path) and --jobs 4 (spawned domains) must both be green —
# results are bit-identical by contract, only wall-clock may differ.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== no build artifacts in git =="
if [ -n "$(git ls-files _build 2>/dev/null)" ]; then
  echo "check.sh: _build/ artifacts are tracked by git; run" >&2
  echo "  git rm -r --cached _build" >&2
  exit 1
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (--jobs 1) =="
dune exec bench/main.exe -- --jobs 1 --json /dev/null

echo "== bench smoke (--jobs 4, parallel group) =="
dune exec bench/main.exe -- --jobs 4 --group parallel --json /dev/null

echo "== CLI parallel smoke =="
out1=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 1 | tail -1)
out4=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 4 | tail -1)
if [ "$out1" != "$out4" ]; then
  echo "check.sh: --jobs 1 and --jobs 4 disagree:" >&2
  echo "  jobs 1: $out1" >&2
  echo "  jobs 4: $out4" >&2
  exit 1
fi

echo "check.sh: all green"
