#!/bin/sh
# One-command tier-1 gate: build, full test suite, bench smoke.
# The parallel layer is exercised at both pool sizes: --jobs 1 (the pure
# sequential path) and --jobs 4 (spawned domains) must both be green —
# results are bit-identical by contract, only wall-clock may differ.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== no build artifacts in git =="
if [ -n "$(git ls-files _build 2>/dev/null)" ]; then
  echo "check.sh: _build/ artifacts are tracked by git; run" >&2
  echo "  git rm -r --cached _build" >&2
  exit 1
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (--jobs 1) =="
dune exec bench/main.exe -- --jobs 1 --repeat 1 --json /dev/null

echo "== bench smoke (--jobs 4, parallel group) =="
dune exec bench/main.exe -- --jobs 4 --repeat 1 --group parallel --json /dev/null

echo "== per-bin fast-path gates =="
# Measure the streaming and observability groups in ONE bench process
# (min-of-3 per test) so every ratio sees the same heap and machine
# conditions, then gate:
#   1. the traced-off observability budget: a bin runs 6 with_span calls
#      through the noop tracer, so 6 x obs/noop-span is the per-bin cost
#      the observability layer adds when tracing is off. It must stay
#      under 3% of stream/engine-per-bin (DESIGN.md "Performance
#      architecture"). The engine-vs-engine pair (traced-off vs
#      stream/engine-per-bin) is the same code path twice and its gap is
#      scheduler noise, so it is printed but not gated.
#   2. no regression beyond 25% against the committed per-PR snapshot
#      results/BENCH_pr6_after.json (generous: absorbs machine-to-machine
#      variance while still catching a lost fast path, which is >5x).
fastpath_json=$(mktemp)
trap 'rm -f "$fastpath_json"' EXIT
dune exec bench/main.exe -- --group stream,obs --json "$fastpath_json"
perbin=$(awk -F': ' '/"stream\/engine-per-bin"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$fastpath_json")
noop_span=$(awk -F': ' '/"obs\/noop-span"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$fastpath_json")
if [ -z "$perbin" ] || [ -z "$noop_span" ]; then
  echo "check.sh: per-bin benchmarks missing from bench output" >&2
  exit 1
fi
if ! awk -v span="$noop_span" -v bin="$perbin" \
    'BEGIN { exit !(6 * span <= bin * 0.03) }'; then
  echo "check.sh: traced-off span overhead (6 x ${noop_span} ns) exceeds" >&2
  echo "  3% of stream/engine-per-bin (${perbin} ns)" >&2
  exit 1
fi
echo "traced-off overhead OK: 6 x ${noop_span} ns spans vs ${perbin} ns per bin"
scripts/bench_diff.sh results/BENCH_pr6_after.json "$fastpath_json" --threshold 25

echo "== CLI parallel smoke =="
out1=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 1 | tail -1)
out4=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 4 | tail -1)
if [ "$out1" != "$out4" ]; then
  echo "check.sh: --jobs 1 and --jobs 4 disagree:" >&2
  echo "  jobs 1: $out1" >&2
  echo "  jobs 4: $out4" >&2
  exit 1
fi

echo "check.sh: all green"
