#!/bin/sh
# One-command tier-1 gate: build, full test suite, bench smoke.
# The parallel layer is exercised at both pool sizes: --jobs 1 (the pure
# sequential path) and --jobs 4 (spawned domains) must both be green —
# results are bit-identical by contract, only wall-clock may differ.
# Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "== no build artifacts in git =="
if [ -n "$(git ls-files _build 2>/dev/null)" ]; then
  echo "check.sh: _build/ artifacts are tracked by git; run" >&2
  echo "  git rm -r --cached _build" >&2
  exit 1
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (--jobs 1) =="
dune exec bench/main.exe -- --jobs 1 --repeat 1 --json /dev/null

echo "== bench smoke (--jobs 4, parallel group) =="
dune exec bench/main.exe -- --jobs 4 --repeat 1 --group parallel --json /dev/null

echo "== per-bin fast-path gates =="
# Measure the streaming and observability groups in ONE bench process
# (min-of-3 per test) so every ratio sees the same heap and machine
# conditions, then gate:
#   1. the traced-off observability budget: a bin runs 6 with_span calls
#      through the noop tracer, so 6 x obs/noop-span is the per-bin cost
#      the observability layer adds when tracing is off. It must stay
#      under 3% of stream/engine-per-bin (DESIGN.md "Performance
#      architecture"). The engine-vs-engine pair (traced-off vs
#      stream/engine-per-bin) is the same code path twice and its gap is
#      scheduler noise, so it is printed but not gated.
#   2. no regression beyond 25% against the committed per-PR snapshot
#      results/BENCH_pr6_after.json (generous: absorbs machine-to-machine
#      variance while still catching a lost fast path, which is >5x).
#      The diff covers the stream/ group only: the obs/ span benches are
#      20-250 ns measurements whose run-to-run spread on a shared host
#      exceeds any threshold that would still mean something, and they
#      are already gated by the in-run relative check above, which is
#      immune to host-speed drift because both sides move together.
fastpath_json=$(mktemp)
trap 'rm -f "$fastpath_json"' EXIT
dune exec bench/main.exe -- --group stream,obs --json "$fastpath_json"
perbin=$(awk -F': ' '/"stream\/engine-per-bin"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$fastpath_json")
noop_span=$(awk -F': ' '/"obs\/noop-span"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$fastpath_json")
if [ -z "$perbin" ] || [ -z "$noop_span" ]; then
  echo "check.sh: per-bin benchmarks missing from bench output" >&2
  exit 1
fi
if ! awk -v span="$noop_span" -v bin="$perbin" \
    'BEGIN { exit !(6 * span <= bin * 0.03) }'; then
  echo "check.sh: traced-off span overhead (6 x ${noop_span} ns) exceeds" >&2
  echo "  3% of stream/engine-per-bin (${perbin} ns)" >&2
  exit 1
fi
echo "traced-off overhead OK: 6 x ${noop_span} ns spans vs ${perbin} ns per bin"
scripts/bench_diff.sh results/BENCH_pr6_after.json "$fastpath_json" \
  --only stream/ --threshold 25

echo "== serving plane gates =="
# Measure the serve group (live server + open-loop loadgen, min-of-3) and
# gate:
#   1. the absolute acceptance bar: serve/qps-sustained is stored as ns
#      per answered query, so "sustains >= 10k queries/s" is exactly
#      "<= 100000".
#   2. no regression beyond 75% against the committed per-PR snapshot
#      results/BENCH_pr7_after.json (i.e. fail above 4x). The serve
#      numbers are wall-clock over a live socket on a possibly-shared
#      host, so run-to-run variance is far above the compute kernels' —
#      the generous threshold absorbs it while still catching a lost
#      fast path (an accidental O(n^2) encode or a serialization
#      bottleneck shows up as far more than 4x).
serve_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$serve_json"' EXIT
dune exec bench/main.exe -- --group serve --json "$serve_json"
qps_ns=$(awk -F': ' '/"serve\/qps-sustained"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$serve_json")
if [ -z "$qps_ns" ]; then
  echo "check.sh: serve/qps-sustained missing from bench output" >&2
  exit 1
fi
if ! awk -v ns="$qps_ns" 'BEGIN { exit !(ns <= 100000) }'; then
  echo "check.sh: serving plane sustains under 10k queries/s" >&2
  echo "  (serve/qps-sustained = ${qps_ns} ns/query, bar is 100000)" >&2
  exit 1
fi
echo "sustained throughput OK: ${qps_ns} ns/query (bar: 100000 = 10k qps)"
scripts/bench_diff.sh results/BENCH_pr7_after.json "$serve_json" \
  --only serve/ --threshold 75

echo "== serve CLI smoke =="
# One deterministic serve+loadgen exchange over a Unix socket: the server
# replays 6 bins, answers exactly 31 requests (30 queries + the topology
# probe), drains, and flushes a resumable checkpoint.
serve_dir=$(mktemp -d)
trap 'rm -f "$fastpath_json" "$serve_json"; rm -rf "$serve_dir"' EXIT
dune exec bin/ic_lab.exe -- serve --dataset geant --weeks 1 --bins 6 \
  --socket "$serve_dir/serve.sock" --stop-after 31 \
  --checkpoint "$serve_dir/serve.ckpt" > "$serve_dir/serve.out" 2>&1 &
serve_pid=$!
i=0
while [ ! -S "$serve_dir/serve.sock" ] && [ "$i" -lt 100 ]; do
  sleep 0.1; i=$((i + 1))
done
loadgen_out=$(dune exec bin/ic_lab.exe -- loadgen \
  --socket "$serve_dir/serve.sock" --queries 30 --seed 42 --report counts)
wait "$serve_pid"
for line in 'shed +0' 'errors +0' 'transport +0'; do
  if ! printf '%s\n' "$loadgen_out" | grep -qE "^$line\$"; then
    echo "check.sh: serve smoke shed or lost queries:" >&2
    echo "$loadgen_out" >&2
    exit 1
  fi
done
if ! grep -q "drained after 31 answered requests" "$serve_dir/serve.out"; then
  echo "check.sh: serve smoke did not drain cleanly:" >&2
  cat "$serve_dir/serve.out" >&2
  exit 1
fi
echo "serve smoke OK: 31 answered, clean drain"

echo "== scenario gates =="
# Measure the scenario group (route rebuild, timeline compile, per-bin
# overlay replay) and gate against the committed per-PR snapshot
# results/BENCH_pr8_after.json. overlay-per-bin amortizes engine refits
# and epoch boundaries across a 48-bin replay, so its variance sits
# between the compute kernels' and the serve plane's — 50% absorbs that
# while still catching an accidental per-bin recompile (compile is ~5x
# a bin).
scenario_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$serve_json" "$scenario_json"; rm -rf "$serve_dir"' EXIT
dune exec bench/main.exe -- --group scenario --json "$scenario_json"
scripts/bench_diff.sh results/BENCH_pr8_after.json "$scenario_json" \
  --only scenario/ --threshold 50

echo "== scenario CLI smoke =="
# The default seeded schedule with kill/resume: the verdict is a pure
# function of the seed, so these lines are exact (the same run is pinned
# in full in test/cli.t — this is the fast signature check).
scenario_dir=$(mktemp -d)
trap 'rm -f "$fastpath_json" "$serve_json" "$scenario_json"; rm -rf "$serve_dir" "$scenario_dir"' EXIT
scenario_out=$(dune exec bin/ic_lab.exe -- scenario --bins 96 \
  --drop-rate 0.02 --corrupt-rate 0.01 --kill-after 30 --resume \
  --checkpoint "$scenario_dir/sc.ckpt")
for line in \
  'resume check: estimates bit-identical to uninterrupted run: yes' \
  'detections 269 (tp 38, fp 231, fn 125): precision 0.141, recall 0.233' \
  'regret +0.041 (worst link at->si), underprovisioned: 0' \
  'topology.changes                 2'; do
  if ! printf '%s\n' "$scenario_out" | grep -qF "$line"; then
    echo "check.sh: scenario smoke missing '$line':" >&2
    printf '%s\n' "$scenario_out" >&2
    exit 1
  fi
done
echo "scenario smoke OK: bit-identical resume, pinned verdict"

echo "== resilience gates =="
# Measure the resilience group (gated per-bin step, breaker-wrapped feed
# polling, per-bin snapshot, robust detection) and gate against the
# committed per-PR snapshot results/BENCH_pr9_after.json. The gated
# per-bin path shares the stream kernels' variance profile; 50% absorbs
# machine noise while still catching a lost total cache (a per-bin
# window rescan is >1.5x) or a polymorphic-compare sort (>10x on the
# robust detector).
resilience_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$serve_json" "$scenario_json" "$resilience_json"; rm -rf "$serve_dir" "$scenario_dir"' EXIT
dune exec bench/main.exe -- --group resilience --json "$resilience_json"
scripts/bench_diff.sh results/BENCH_pr9_after.json "$resilience_json" \
  --only resilience/ --threshold 50
# The self-healing machinery is strictly opt-in: the ungated per-bin
# number above (stream/engine-per-bin, gated by the pr6 snapshot) is the
# proof that the default path did not pay for it.

echo "== chaos smoke =="
# The full self-healing stack under fault injection, killed at bin 26 —
# inside the failed-link epoch (boundary at 24) but BEFORE the scheduled
# epoch refit fires (24 + 4) — so quarantine flags, breaker state, and
# the pending epoch-refit schedule all ride the checkpoint across the
# kill. The verdict is a pure function of the seed: resumed estimates
# must be bit-identical, and the robust detector must catch both
# injected events with time-to-detect 0.
chaos_out=$(dune exec bin/ic_lab.exe -- scenario --bins 96 \
  --drop-rate 0.02 --corrupt-rate 0.01 --self-heal --breaker 3 \
  --robust-scale --kill-after 26 --resume \
  --checkpoint "$scenario_dir/chaos.ckpt")
for line in \
  'self-heal: refit gating on (threshold 4, quarantine limit 6), epoch refit after 4 bins' \
  'feed breaker: open after 3 faulted bins, cooldown 6, fault fraction 0.50' \
  'resume check: estimates bit-identical to uninterrupted run: yes' \
  'scale: rolling-quantile (window 64, q 0.25)' \
  'ddos ie: detected at bin 48 (ttd 0)' \
  'flash-crowd be: detected at bin 72 (ttd 0)'; do
  if ! printf '%s\n' "$chaos_out" | grep -qF "$line"; then
    echo "check.sh: chaos smoke missing '$line':" >&2
    printf '%s\n' "$chaos_out" >&2
    exit 1
  fi
done
echo "chaos smoke OK: bit-identical resume through epoch-boundary kill, ttd 0 on both events"

echo "== shootout gates =="
# Measure the shootout group (single-bin estimate cost of every registered
# estimator family, calibrated state + reused plan) and gate against the
# committed per-PR snapshot results/BENCH_pr10_after.json. The group is
# built from the registry, so a family added later is automatically
# benched; 50% absorbs host noise while catching an accidentally
# quadratic stage (the families sit 6 us - 600 us apart, a lost plan
# reuse alone is >3x).
shootout_json=$(mktemp)
trap 'rm -f "$fastpath_json" "$serve_json" "$scenario_json" "$resilience_json" "$shootout_json"; rm -rf "$serve_dir" "$scenario_dir"' EXIT
dune exec bench/main.exe -- --group shootout --json "$shootout_json"
scripts/bench_diff.sh results/BENCH_pr10_after.json "$shootout_json" \
  --only shootout/ --threshold 50

echo "== shootout CLI smoke =="
# Cross-validated ranking on abilene with live timing: the ic family must
# not be dominated by the gravity family on BOTH axes (held-out error and
# per-bin latency) — the paper's core claim surviving as an executable
# gate. Gravity is always cheaper, so in practice this is "ic estimates
# better than gravity"; phrased as non-domination it stays meaningful
# even if a future fast path makes ic the cheaper one too.
shootout_out=$(dune exec bin/ic_lab.exe -- shootout --datasets abilene --stride 42)
ic_err=$(printf '%s\n' "$shootout_out" | awk '$1=="abilene" && $2=="ic" {print $3}')
ic_lat=$(printf '%s\n' "$shootout_out" | awk '$1=="abilene" && $2=="ic" {print $4}')
g_err=$(printf '%s\n' "$shootout_out" | awk '$1=="abilene" && $2=="gravity" {print $3}')
g_lat=$(printf '%s\n' "$shootout_out" | awk '$1=="abilene" && $2=="gravity" {print $4}')
if [ -z "$ic_err" ] || [ -z "$ic_lat" ] || [ -z "$g_err" ] || [ -z "$g_lat" ]; then
  echo "check.sh: shootout output missing ic or gravity rows:" >&2
  printf '%s\n' "$shootout_out" >&2
  exit 1
fi
if ! awk -v ie="$ic_err" -v il="$ic_lat" -v ge="$g_err" -v gl="$g_lat" \
    'BEGIN { exit !(ie < ge || il < gl) }'; then
  echo "check.sh: ic is dominated by gravity on both axes:" >&2
  echo "  ic:      error $ic_err, $ic_lat us/bin" >&2
  echo "  gravity: error $g_err, $g_lat us/bin" >&2
  exit 1
fi
echo "shootout smoke OK: ic error $ic_err vs gravity $g_err (latency $ic_lat vs $g_lat us/bin)"

echo "== CLI parallel smoke =="
out1=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 1 | tail -1)
out4=$(dune exec bin/ic_lab.exe -- estimate --dataset geant --week 1 \
  --prior stable-fp --stride 24 --jobs 4 | tail -1)
if [ "$out1" != "$out4" ]; then
  echo "check.sh: --jobs 1 and --jobs 4 disagree:" >&2
  echo "  jobs 1: $out1" >&2
  echo "  jobs 4: $out4" >&2
  exit 1
fi

echo "check.sh: all green"
