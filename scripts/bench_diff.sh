#!/bin/sh
# bench_diff.sh BASELINE.json AFTER.json [--threshold PCT] [--only PREFIX]
#
# Diff two BENCH_*.json files written by `bench/main.exe --json` and print a
# per-benchmark speedup table (baseline_ns / after_ns: >1 is faster). Exits
# non-zero if any benchmark present in BOTH files regressed by more than
# PCT percent (default 10). Benchmarks present in only one file are listed
# but never fail the gate — PRs add and retire benchmarks routinely.
#
# POSIX sh + awk only; no jq dependency. The JSON is the flat, one-entry-
# per-line format bench/main.exe emits, which a line-oriented parser reads
# reliably.
set -eu

threshold=10
only=""
base=""
after=""
while [ $# -gt 0 ]; do
  case "$1" in
    --threshold)
      [ $# -ge 2 ] || { echo "bench_diff.sh: --threshold needs a value" >&2; exit 2; }
      threshold=$2; shift 2 ;;
    --only)
      [ $# -ge 2 ] || { echo "bench_diff.sh: --only needs a prefix" >&2; exit 2; }
      only=$2; shift 2 ;;
    -*)
      echo "bench_diff.sh: unknown option $1" >&2; exit 2 ;;
    *)
      if [ -z "$base" ]; then base=$1
      elif [ -z "$after" ]; then after=$1
      else echo "bench_diff.sh: too many arguments" >&2; exit 2
      fi
      shift ;;
  esac
done
[ -n "$base" ] && [ -n "$after" ] || {
  echo "usage: bench_diff.sh BASELINE.json AFTER.json [--threshold PCT] [--only PREFIX]" >&2
  exit 2
}
[ -r "$base" ] || { echo "bench_diff.sh: cannot read $base" >&2; exit 2; }
[ -r "$after" ] || { echo "bench_diff.sh: cannot read $after" >&2; exit 2; }

awk -v base="$base" -v after="$after" -v threshold="$threshold" -v only="$only" '
  function parse(path, into,    line, name, value) {
    while ((getline line < path) > 0) {
      # entries look like:  "group/name": 1234.567,
      if (line !~ /^[ \t]*"[^"]+\/[^"]*":[ \t]*[0-9]/) continue
      name = line
      sub(/^[ \t]*"/, "", name); sub(/".*$/, "", name)
      value = line
      sub(/^[^:]*:[ \t]*/, "", value); sub(/[,\s]*$/, "", value)
      into[name] = value + 0
    }
    close(path)
  }
  BEGIN {
    parse(base, b); parse(after, a)
    printf "%-44s %14s %14s %9s\n", "benchmark", "baseline ns", "after ns", "speedup"
    regressions = 0; compared = 0
    n = 0
    for (k in b) names[n++] = k
    for (k in a) if (!(k in b)) names[n++] = k
    # insertion sort for POSIX awk portability
    for (i = 1; i < n; i++) {
      v = names[i]
      for (j = i - 1; j >= 0 && names[j] > v; j--) names[j + 1] = names[j]
      names[j + 1] = v
    }
    for (i = 0; i < n; i++) {
      k = names[i]
      if (only != "" && index(k, only) != 1) continue
      if (!(k in b)) { printf "%-44s %14s %14.1f %9s\n", k, "-", a[k], "new"; continue }
      if (!(k in a)) { printf "%-44s %14.1f %14s %9s\n", k, b[k], "-", "gone"; continue }
      if (a[k] <= 0) { printf "%-44s %14.1f %14.1f %9s\n", k, b[k], a[k], "?"; continue }
      ratio = b[k] / a[k]
      flag = ""
      if (ratio < 1 - threshold / 100) { flag = "  REGRESSED"; regressions++ }
      compared++
      printf "%-44s %14.1f %14.1f %8.2fx%s\n", k, b[k], a[k], ratio, flag
    }
    printf "\n%d benchmarks compared, regression threshold %s%%\n", compared, threshold
    if (regressions > 0) {
      printf "bench_diff.sh: %d benchmark(s) regressed beyond %s%%\n", regressions, threshold
      exit 1
    }
  }
'
