(* ic-lab: command-line driver for the IC traffic-matrix laboratory. *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let dataset_of_string = function
  | "geant" -> `Geant
  | "totem" -> `Totem
  | s -> invalid_arg ("unknown dataset " ^ s ^ " (expected geant|totem)")

let load_dataset which weeks seed =
  match which with
  | `Geant -> Ic_datasets.Geant.generate ?weeks ?seed ()
  | `Totem -> Ic_datasets.Totem.generate ?weeks ?seed ()

(* --- span tracing (--trace FILE) --------------------------------------- *)

(* Retention sized for a full-dataset replay: a bin emits ~10 spans, so
   64k spans cover several thousand bins before the ring starts evicting
   the oldest. *)
let make_tracer = function
  | None -> Ic_obs.Trace.noop
  | Some _ -> Ic_obs.Trace.create ~capacity:65536 ()

let export_trace tracer = function
  | None -> ()
  | Some path ->
      let n = Ic_obs.Trace.export_jsonl ~path tracer in
      Printf.printf "wrote %d spans to %s\n" n path

(* --- experiment ------------------------------------------------------- *)

let run_experiments ids stride out_dir verbose =
  setup_logs verbose;
  let ctx = Ic_experiments.Context.create ~stride ?out_dir () in
  let targets =
    match ids with
    | [] | [ "all" ] -> Ic_experiments.Registry.ids
    | ids -> ids
  in
  let missing =
    List.filter
      (fun id -> Option.is_none (Ic_experiments.Registry.find id))
      targets
  in
  if missing <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " missing)
      (String.concat ", " Ic_experiments.Registry.ids);
    exit 1
  end;
  List.iter
    (fun id ->
      let run = Option.get (Ic_experiments.Registry.find id) in
      let outcome = run ctx in
      print_string (Ic_experiments.Outcome.render outcome);
      (match Ic_experiments.Context.out_dir ctx with
      | Some dir ->
          let path = Ic_experiments.Outcome.write_csv ~dir outcome in
          Printf.printf "  [series written to %s]\n" path;
          let spec =
            (* Figure 7 is the paper's log-log CCDF *)
            if id = "fig7" then
              Some
                {
                  Ic_report.Svg_plot.default_spec with
                  title = outcome.Ic_experiments.Outcome.title;
                  x_axis = Ic_report.Svg_plot.Log;
                  y_axis = Ic_report.Svg_plot.Log;
                }
            else None
          in
          (match Ic_experiments.Outcome.write_svg ?spec ~dir outcome with
          | Some svg -> Printf.printf "  [chart written to %s]\n" svg
          | None -> ())
      | None -> ());
      print_newline ())
    targets

(* --- gen --------------------------------------------------------------- *)

let run_gen which weeks seed out =
  let ds = load_dataset (dataset_of_string which) weeks seed in
  Ic_traffic.Csv_io.write_series ~path:out ds.Ic_datasets.Dataset.series;
  Printf.printf "wrote %d bins x %d nodes to %s\n"
    (Ic_traffic.Series.length ds.Ic_datasets.Dataset.series)
    (Ic_traffic.Series.size ds.Ic_datasets.Dataset.series)
    out

(* --- fit --------------------------------------------------------------- *)

let subsample stride series =
  if stride = 1 then series
  else begin
    let len = max 1 (Ic_traffic.Series.length series / stride) in
    Ic_traffic.Series.make series.Ic_traffic.Series.binning
      (Array.init len (fun k ->
           Ic_traffic.Series.tm series
             (min (k * stride) (Ic_traffic.Series.length series - 1))))
  end

let run_fit which weeks seed week stride input nodes bin_minutes =
  let series, name_of =
    match input with
    | Some path ->
        let n =
          match nodes with
          | Some n -> n
          | None ->
              invalid_arg "--nodes is required when fitting from a CSV file"
        in
        let binning =
          Ic_timeseries.Timebin.make ~width_s:(bin_minutes * 60)
        in
        let series = Ic_traffic.Csv_io.read_series ~path ~binning ~n in
        (series, string_of_int)
    | None ->
        let ds = load_dataset (dataset_of_string which) weeks seed in
        ( Ic_datasets.Dataset.week ds week,
          fun i -> Ic_topology.Graph.name ds.Ic_datasets.Dataset.graph i )
  in
  let series = subsample stride series in
  let fit = Ic_core.Fit.fit_stable_fp series in
  Printf.printf "stable-fP fit (%d bins, %d nodes)\n"
    (Ic_traffic.Series.length series)
    (Ic_traffic.Series.size series);
  Printf.printf "  f = %.4f\n" fit.params.f;
  Printf.printf "  mean RelL2 = %.4f (sweeps %d)\n" fit.mean_error fit.sweeps;
  Printf.printf "  preferences:\n";
  Array.iteri
    (fun i p -> Printf.printf "    %-6s %.4f\n" (name_of i) p)
    fit.params.preference

(* --- estimate ---------------------------------------------------------- *)

(* Unknown estimator names exit through the CLI's own error path (listing
   the registry) rather than surfacing as an exception backtrace. *)
let check_estimator name =
  if not (Ic_estimation.Estimator.mem name) then begin
    Printf.eprintf "unknown estimator %s\navailable: %s\n" name
      (String.concat ", " (Ic_estimation.Estimator.names ()));
    exit 1
  end

let run_estimate which weeks seed calib_week target_week prior_name estimator
    stride jobs trace =
  Option.iter check_estimator estimator;
  let ds = load_dataset (dataset_of_string which) weeks seed in
  let take w = subsample stride (Ic_datasets.Dataset.week ds w) in
  let truth = take target_week in
  let routing = Ic_topology.Routing.build ds.Ic_datasets.Dataset.graph in
  match estimator with
  | Some name ->
      let (module E : Ic_estimation.Estimator.S) =
        Ic_estimation.Estimator.find_exn name
      in
      let tracer = make_tracer trace in
      let result =
        Ic_parallel.Pool.with_pool ~jobs ~tracer (fun pool ->
            Ic_estimation.Pipeline.run_estimator ~tracer ~pool
              (module E)
              ~routing ~train:(take calib_week) ~truth ())
      in
      Printf.printf
        "estimated %s week %d with %s estimator: mean RelL2 = %.4f over %d \
         bins\n"
        which target_week name result.mean_error
        (Array.length result.per_bin_error);
      export_trace tracer trace
  | None ->
  let config = Ic_estimation.Pipeline.default_config routing in
  let prior =
    match prior_name with
    | "gravity" -> Ic_estimation.Prior.gravity truth
    | "measured" ->
        let fit = Ic_core.Fit.fit_stable_fp truth in
        Ic_estimation.Prior.ic_measured fit.params
          truth.Ic_traffic.Series.binning
    | "stable-fp" ->
        let fit = Ic_core.Fit.fit_stable_fp (take calib_week) in
        Ic_estimation.Prior.ic_stable_fp ~f:fit.params.f
          ~preference:fit.params.preference truth
    | "stable-f" ->
        let fit = Ic_core.Fit.fit_stable_fp (take calib_week) in
        Ic_estimation.Prior.ic_stable_f ~f:fit.params.f truth
    | s -> invalid_arg ("unknown prior " ^ s)
  in
  (* The parallel path is qcheck-pinned bit-identical to the sequential
     one, so --jobs only changes wall-clock, never the numbers below.
     Tracing likewise only observes. *)
  let tracer = make_tracer trace in
  let result =
    Ic_parallel.Pool.with_pool ~jobs ~tracer (fun pool ->
        Ic_estimation.Pipeline.run_par ~tracer ~pool config ~truth ~prior)
  in
  Printf.printf
    "estimated %s week %d with %s prior: mean RelL2 = %.4f over %d bins\n"
    which target_week prior_name result.mean_error
    (Array.length result.per_bin_error);
  export_trace tracer trace

(* --- trace --------------------------------------------------------------- *)

let run_trace seed duration_s connections_per_bin =
  let ab =
    Ic_datasets.Abilene.generate ?seed ~duration_s ~connections_per_bin ()
  in
  let report name (trace : Ic_netflow.Trace.t) =
    let m = Ic_netflow.Trace.measure_f trace ~bin_s:300. in
    let f_ij = Array.map (fun b -> b.Ic_netflow.Trace.f_ij) m in
    let f_ji = Array.map (fun b -> b.Ic_netflow.Trace.f_ji) m in
    let mean a =
      if Array.length a = 0 then 0.
      else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
    in
    Printf.printf "%s (%d fwd pkts, %d rev pkts):\n" name
      (List.length trace.fwd) (List.length trace.rev);
    Printf.printf "  f forward  %.3f  %s\n" (mean f_ij)
      (Ic_report.Sparkline.render f_ij);
    Printf.printf "  f reverse  %.3f  %s\n" (mean f_ji)
      (Ic_report.Sparkline.render f_ji);
    Printf.printf "  unknown traffic: %.1f%%\n"
      (100. *. Ic_netflow.Trace.unknown_fraction m)
  in
  Printf.printf "application-mix aggregate f: %.3f\n"
    (Ic_netflow.App_mix.aggregate_f ab.mix);
  report "IPLS <-> CLEV" ab.trace_clev;
  report "IPLS <-> KSCY" ab.trace_kscy

(* --- whatif -------------------------------------------------------------- *)

let run_whatif node boost f_new seed topology_file =
  let graph =
    match topology_file with
    | None -> Ic_topology.Topologies.geant_like ()
    | Some path -> begin
        match Ic_topology.Topo_io.load path with
        | Ok g -> g
        | Error e -> invalid_arg ("bad topology file: " ^ e)
      end
  in
  let routing = Ic_topology.Routing.build ~with_marginals:false graph in
  let binning = Ic_timeseries.Timebin.five_min in
  let spec =
    {
      Ic_core.Synth.default_spec with
      nodes = Ic_topology.Graph.node_count graph;
      binning;
      bins = Ic_timeseries.Timebin.bins_per_day binning;
      mean_total_bytes = 40e9;
    }
  in
  let { Ic_core.Synth.series = _; truth } =
    Ic_core.Synth.generate spec
      (Ic_prng.Rng.create (Option.value ~default:77 seed))
  in
  let scenario =
    let t = truth in
    let t =
      match node with
      | Some name -> begin
          match Ic_topology.Graph.index_of_name graph name with
          | Some idx -> Ic_core.Synth.with_flash_crowd ~node:idx ~boost t
          | None -> invalid_arg ("unknown PoP " ^ name)
        end
      | None -> t
    in
    match f_new with
    | Some f -> Ic_core.Synth.with_application_shift ~f t
    | None -> t
  in
  let peak params =
    let series = Ic_core.Model.stable_fp params binning in
    let m = Ic_topology.Graph.edge_count graph in
    let out = Array.make m 0. in
    for k = 0 to Ic_traffic.Series.length series - 1 do
      let y =
        Ic_topology.Routing.link_loads routing
          (Ic_traffic.Tm.to_vector (Ic_traffic.Series.tm series k))
      in
      for e = 0 to m - 1 do
        out.(e) <- Float.max out.(e) y.(e)
      done
    done;
    out
  in
  let base = peak truth and changed = peak scenario in
  Printf.printf "%-12s %12s %12s %8s\n" "link" "base-peak" "whatif-peak" "delta";
  let rows =
    List.map
      (fun (e : Ic_topology.Graph.edge) ->
        let d =
          if base.(e.id) > 0. then
            100. *. (changed.(e.id) -. base.(e.id)) /. base.(e.id)
          else 0.
        in
        (e, d))
      (Ic_topology.Graph.edges graph)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) rows in
  List.iteri
    (fun k ((e : Ic_topology.Graph.edge), d) ->
      if k < 12 then
        Printf.printf "%-5s->%-5s %12.3g %12.3g %+7.1f%%\n"
          (Ic_topology.Graph.name graph e.src)
          (Ic_topology.Graph.name graph e.dst)
          base.(e.id) changed.(e.id) d)
    sorted

(* --- stream -------------------------------------------------------------- *)

(* Sharded streaming: split the replay into [shards] contiguous time
   ranges, run one independent engine per shard on a [jobs]-domain pool,
   and report the order-independent merged telemetry. Kill/resume goes
   through the atomic all-shard checkpoint. *)
let run_stream_sharded which series routing config ~shards ~jobs ~total
    ~feed_seed ~noise ~drop_rate ~corrupt_rate ~kill_after ~resume
    ~checkpoint_path ~tracer =
  let series = Ic_traffic.Series.sub series ~pos:0 ~len:total in
  let per_shard = total / shards in
  if per_shard < 1 then
    invalid_arg "stream: fewer bins than shards";
  let specs () =
    List.init shards (fun s ->
        let pos = s * per_shard in
        let len = if s = shards - 1 then total - pos else per_shard in
        let sub = Ic_traffic.Series.sub series ~pos ~len in
        {
          Ic_runtime.Shard.name = Printf.sprintf "%s-%d" which s;
          config;
          feed =
            Ic_runtime.Feed.create ~noise_sigma:noise ~drop_rate ~corrupt_rate
              routing sub ~seed:(feed_seed + s);
        })
  in
  Printf.printf
    "streaming %s: %d bins x %d nodes in %d shards (jobs %d, drop %.1f%%, corrupt %.1f%%, noise %.1f%%)\n"
    which total
    (Ic_traffic.Series.size series)
    shards jobs (100. *. drop_rate) (100. *. corrupt_rate) (100. *. noise);
  Ic_parallel.Pool.with_pool ~jobs ~tracer (fun pool ->
      let uninterrupted () =
        let fleet = Ic_runtime.Shard.create ~pool (specs ()) in
        Ic_runtime.Shard.run fleet
      in
      let fleet, final =
        match kill_after with
        | Some k when k > 0 && k < per_shard ->
            let fleet0 = Ic_runtime.Shard.create ~tracer ~pool (specs ()) in
            ignore (Ic_runtime.Shard.run ~max_bins:k fleet0);
            Ic_runtime.Shard.save ~path:checkpoint_path fleet0;
            Printf.printf
              "killed after %d bins per shard; fleet checkpoint written to %s\n"
              k checkpoint_path;
            if not resume then (fleet0, Ic_runtime.Shard.results fleet0)
            else begin
              match
                Ic_runtime.Shard.load ~tracer ~path:checkpoint_path ~pool
                  (specs ())
              with
              | Error e ->
                  prerr_endline e;
                  exit 1
              | Ok fleet1 ->
                  let combined = Ic_runtime.Shard.run fleet1 in
                  let shadow = uninterrupted () in
                  let identical =
                    List.for_all2
                      (fun (name_a, (a : Ic_runtime.Replay.result))
                           (name_b, (b : Ic_runtime.Replay.result)) ->
                        (* head estimates live in fleet0, tail in fleet1 *)
                        let head =
                          (List.assoc name_a
                             (Ic_runtime.Shard.results fleet0))
                            .Ic_runtime.Replay.estimates
                        in
                        name_a = name_b
                        && Ic_runtime.Replay.bit_identical
                             (Array.append head a.Ic_runtime.Replay.estimates)
                             b.Ic_runtime.Replay.estimates)
                      combined shadow
                  in
                  Printf.printf
                    "resume check: all %d shards bit-identical to uninterrupted runs: %s\n"
                    shards
                    (if identical then "yes" else "NO");
                  if not identical then exit 1;
                  (fleet1, combined)
            end
        | _ ->
            let fleet = Ic_runtime.Shard.create ~tracer ~pool (specs ()) in
            let res = Ic_runtime.Shard.run fleet in
            (fleet, res)
      in
      List.iter
        (fun (name, (_ : Ic_runtime.Replay.result)) ->
          let engine =
            List.assoc name (Ic_runtime.Shard.engines fleet)
          in
          (* bins_seen, not the result's estimate count: after a resume the
             fleet only accumulates post-restore estimates, but the engine
             knows its full stream position. *)
          Printf.printf "shard %s: %d bins, final rung %s, %d transitions\n"
            name
            (Ic_runtime.Engine.bins_seen engine)
            (Ic_runtime.Degrade.level_name (Ic_runtime.Engine.level engine))
            (List.length (Ic_runtime.Engine.transitions engine)))
        final;
      print_string (Ic_runtime.Shard.merged_dump fleet))

let run_stream which weeks seed bins drop_rate corrupt_rate noise open_loop
    kill_after resume checkpoint_path refit_every window recover_after
    telemetry_mode estimator shards jobs trace verbose =
  setup_logs verbose;
  check_estimator estimator;
  let tracer = make_tracer trace in
  let ds = load_dataset (dataset_of_string which) weeks seed in
  let series = ds.Ic_datasets.Dataset.series in
  let routing = Ic_topology.Routing.build ds.Ic_datasets.Dataset.graph in
  let binning = series.Ic_traffic.Series.binning in
  let config =
    let c = Ic_runtime.Engine.default_config routing binning in
    let c = { c with Ic_runtime.Engine.estimator } in
    let c =
      match refit_every with
      | Some r -> { c with Ic_runtime.Engine.refit_every = r }
      | None -> c
    in
    let c =
      match window with
      | Some w -> { c with Ic_runtime.Engine.window = w }
      | None -> c
    in
    match recover_after with
    | Some r -> { c with Ic_runtime.Engine.recover_after = r }
    | None -> c
  in
  let feed_seed = Option.value ~default:7 seed in
  let total =
    let len = Ic_traffic.Series.length series in
    match bins with Some b -> min b len | None -> len
  in
  let openloop =
    match open_loop with
    | None -> None
    | Some rate ->
        let duration =
          float_of_int total
          *. float_of_int binning.Ic_timeseries.Timebin.width_s
        in
        let events =
          Ic_runtime.Feed.Openloop.schedule ~rate ~duration ~seed:feed_seed ()
        in
        Printf.printf
          "open-loop overlay: %d Poisson arrivals at %.3g/s over %.0f s\n"
          (Array.length events) rate duration;
        Some events
  in
  (* Each engine counts its own feed's fault outcomes: the feed is built
     against the engine's telemetry sink so feed.* counters land next to
     the engine/fastpath counters in one dump. *)
  let fresh_feed ?telemetry () =
    Ic_runtime.Feed.create ~noise_sigma:noise ~drop_rate ~corrupt_rate
      ?openloop ?telemetry routing series ~seed:feed_seed
  in
  if shards < 1 then invalid_arg "stream: shards must be >= 1";
  if jobs < 1 then invalid_arg "stream: jobs must be >= 1";
  if openloop <> None && shards > 1 then
    invalid_arg
      "stream: --open-loop applies to the single-shard path (shard feeds \
       re-bin time from their own origin)";
  if shards > 1 then begin
    run_stream_sharded which series routing config ~shards ~jobs ~total
      ~feed_seed ~noise ~drop_rate ~corrupt_rate ~kill_after ~resume
      ~checkpoint_path ~tracer;
    export_trace tracer trace
  end
  else begin
  Printf.printf "streaming %s: %d bins x %d nodes (drop %.1f%%, corrupt %.1f%%, noise %.1f%%)\n"
    which total
    (Ic_traffic.Series.size series)
    (100. *. drop_rate) (100. *. corrupt_rate) (100. *. noise);
  let run_uninterrupted () =
    let engine = Ic_runtime.Engine.create config in
    let feed =
      fresh_feed ~telemetry:(Ic_runtime.Engine.telemetry engine) ()
    in
    let res = Ic_runtime.Replay.run ~max_bins:total engine feed in
    (engine, res)
  in
  let engine, estimates =
    match kill_after with
    | Some k when k > 0 && k < total ->
        let engine0 = Ic_runtime.Engine.create ~tracer config in
        let head =
          Ic_runtime.Replay.run ~max_bins:k engine0
            (fresh_feed ~telemetry:(Ic_runtime.Engine.telemetry engine0) ())
        in
        Ic_runtime.Checkpoint.save ~path:checkpoint_path engine0;
        Printf.printf "killed after %d bins; checkpoint written to %s\n" k
          checkpoint_path;
        if not resume then (engine0, head.Ic_runtime.Replay.estimates)
        else begin
          match
            Ic_runtime.Checkpoint.load ~path:checkpoint_path ~config
          with
          | Error e ->
              prerr_endline e;
              exit 1
          | Ok engine1 ->
              (* The restored sink already carries the head's feed.*
                 counts, and skip counts nothing, so resumed totals equal
                 the uninterrupted run's. *)
              let feed =
                fresh_feed ~telemetry:(Ic_runtime.Engine.telemetry engine1) ()
              in
              Ic_runtime.Feed.skip feed k;
              let tail =
                Ic_runtime.Replay.run ~max_bins:(total - k) engine1 feed
              in
              Printf.printf "resumed from bin %d, processed %d more bins\n" k
                (Array.length tail.Ic_runtime.Replay.estimates);
              let combined =
                Array.append head.Ic_runtime.Replay.estimates
                  tail.Ic_runtime.Replay.estimates
              in
              let _, shadow = run_uninterrupted () in
              let identical =
                Ic_runtime.Replay.bit_identical combined
                  shadow.Ic_runtime.Replay.estimates
              in
              Printf.printf
                "resume check: estimates bit-identical to uninterrupted run: %s\n"
                (if identical then "yes" else "NO");
              if not identical then exit 1;
              (engine1, combined)
        end
    | _ ->
        let engine = Ic_runtime.Engine.create ~tracer config in
        let res =
          Ic_runtime.Replay.run ~max_bins:total engine
            (fresh_feed ~telemetry:(Ic_runtime.Engine.telemetry engine) ())
        in
        (engine, res.Ic_runtime.Replay.estimates)
  in
  Printf.printf "processed %d bins; final prior rung: %s\n"
    (Array.length estimates)
    (Ic_runtime.Degrade.level_name (Ic_runtime.Engine.level engine));
  let transitions = Ic_runtime.Engine.transitions engine in
  Printf.printf "degradation transitions (%d):\n" (List.length transitions);
  List.iter
    (fun (tr : Ic_runtime.Degrade.transition) ->
      Printf.printf "  bin %5d  %s -> %s  (%s)\n" tr.bin
        (Ic_runtime.Degrade.level_name tr.from_)
        (Ic_runtime.Degrade.level_name tr.to_)
        (Ic_runtime.Degrade.reason_name tr.reason))
    transitions;
  let with_timings =
    match telemetry_mode with
    | "counters" -> false
    | "full" -> true
    | s -> invalid_arg ("unknown telemetry mode " ^ s ^ " (counters|full)")
  in
  print_string
    (Ic_runtime.Telemetry.dump ~with_timings
       (Ic_runtime.Engine.telemetry engine));
  export_trace tracer trace
  end

(* --- metrics ------------------------------------------------------------- *)

(* Prometheus-style exposition of a short replay's telemetry. The sink gets
   a fake clock that advances 1 ms per reading, so every histogram — not
   just the counters — is a pure function of the observation stream and the
   output can be pinned byte-for-byte in the cram suite. *)
let run_metrics which weeks seed bins drop_rate corrupt_rate noise estimator
    serve_queries =
  check_estimator estimator;
  let ds = load_dataset (dataset_of_string which) weeks seed in
  let series = ds.Ic_datasets.Dataset.series in
  let routing = Ic_topology.Routing.build ds.Ic_datasets.Dataset.graph in
  let config =
    {
      (Ic_runtime.Engine.default_config routing
         series.Ic_traffic.Series.binning)
      with
      Ic_runtime.Engine.estimator;
    }
  in
  let tick = ref 0. in
  let clock () =
    tick := !tick +. 0.001;
    !tick
  in
  let telemetry = Ic_runtime.Telemetry.create ~clock () in
  let engine = Ic_runtime.Engine.create ~telemetry config in
  let feed =
    Ic_runtime.Feed.create ~noise_sigma:noise ~drop_rate ~corrupt_rate
      ~telemetry routing series
      ~seed:(Option.value ~default:7 seed)
  in
  let total =
    let len = Ic_traffic.Series.length series in
    match bins with Some b -> min b len | None -> len
  in
  let res = Ic_runtime.Replay.run ~max_bins:total engine feed in
  (* The serving plane shares the engine's registry, so --serve-queries
     makes one exposition show both planes; the handler gets the same
     deterministic clock, so the request-duration histogram is as pinnable
     as the engine's stage timings. *)
  if serve_queries > 0 then begin
    let source = Ic_serve.Source.create routing in
    let bins_run = Array.length res.Ic_runtime.Replay.estimates in
    if bins_run > 0 then
      Ic_serve.Source.publish source ~bin:(bins_run - 1)
        ~level:
          (Ic_runtime.Degrade.rank
             res.Ic_runtime.Replay.levels.(bins_run - 1))
        res.Ic_runtime.Replay.estimates.(bins_run - 1);
    let handler =
      Ic_serve.Handler.create ~clock
        ~registry:(Ic_runtime.Telemetry.registry telemetry)
        [ (which, source) ]
    in
    let n = Ic_traffic.Series.size series in
    for k = 0 to serve_queries - 1 do
      let req =
        match k mod 5 with
        | 0 -> Ic_serve.Wire.Ping (Int64.of_int k)
        | 1 -> Ic_serve.Wire.Latest_tm { tenant = "" }
        | 2 ->
            Ic_serve.Wire.Od_flow
              { tenant = ""; src = k mod n; dst = (k + 1) mod n }
        | 3 -> Ic_serve.Wire.Topology { tenant = "" }
        | _ -> Ic_serve.Wire.Whatif { tenant = ""; scale = 1.5 }
      in
      ignore (Ic_serve.Handler.handle handler req)
    done
  end;
  print_string
    (Ic_obs.Metrics.expose (Ic_runtime.Telemetry.registry telemetry))

(* --- shootout ------------------------------------------------------------ *)

let run_shootout datasets estimators folds seed stride timing_mode =
  let split s =
    String.split_on_char ',' s |> List.filter (fun x -> x <> "")
  in
  let datasets =
    match split datasets with
    | [] -> Ic_experiments.Shootout.dataset_names
    | ds -> ds
  in
  List.iter
    (fun d ->
      if not (List.mem d Ic_experiments.Shootout.dataset_names) then begin
        Printf.eprintf "unknown dataset %s\navailable: %s\n" d
          (String.concat ", " Ic_experiments.Shootout.dataset_names);
        exit 1
      end)
    datasets;
  let estimators =
    match estimators with
    | None -> None
    | Some s ->
        let names = split s in
        List.iter check_estimator names;
        Some names
  in
  let timing =
    match timing_mode with
    | "on" -> true
    | "off" -> false
    | s -> invalid_arg ("unknown timing mode " ^ s ^ " (on|off)")
  in
  let rows =
    Ic_experiments.Shootout.run ?estimators ~folds ~seed ~stride ~timing
      ~datasets ()
  in
  Ic_experiments.Shootout.render ~folds ~seed ~stride ~timing rows

(* --- scenario ------------------------------------------------------------ *)

let scenario_graph = function
  | "geant" -> Ic_topology.Topologies.geant_like ()
  | "totem" -> Ic_topology.Topologies.totem_like ()
  | "abilene" -> Ic_topology.Topologies.abilene_like ()
  | s ->
      invalid_arg ("unknown topology " ^ s ^ " (expected geant|totem|abilene)")

let split_once c s =
  match String.index_opt s c with
  | None -> (s, None)
  | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

(* TARGET@AT[+DUR][*X] — the shared grammar of every scenario event flag. *)
let parse_event_spec ~flag s =
  let bad () =
    invalid_arg
      (Printf.sprintf "bad --%s spec %S (expected TARGET@AT[+DUR][*X])" flag s)
  in
  match split_once '@' s with
  | _, None -> bad ()
  | target, Some rest ->
      let rest, x = split_once '*' rest in
      let at_s, dur_s = split_once '+' rest in
      let int_of v =
        match int_of_string_opt v with Some i -> i | None -> bad ()
      in
      let float_of v =
        match float_of_string_opt v with Some f -> f | None -> bad ()
      in
      (target, int_of at_s, Option.map int_of dur_s, Option.map float_of x)

let parse_link ~flag s =
  match split_once '-' s with
  | a, Some b when a <> "" && b <> "" -> (a, b)
  | _ -> invalid_arg (Printf.sprintf "bad --%s link %S (expected A-B)" flag s)

let require_dur ~flag = function
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "--%s spec needs a +DUR" flag)

(* Default schedule: fail the first non-bridge link for a quarter of the
   run, DDoS one PoP, flash-crowd another — so a bare `ic-lab scenario`
   exercises a route recomputation, an attack and a demand surge. *)
let default_events graph bins =
  let base = Ic_topology.Routing.build ~with_marginals:false graph in
  let link_ids (e : Ic_topology.Graph.edge) =
    List.filter_map
      (fun (s, d) ->
        Option.map
          (fun (x : Ic_topology.Graph.edge) -> x.id)
          (Ic_topology.Graph.find_edge graph ~src:s ~dst:d))
      [ (e.src, e.dst); (e.dst, e.src) ]
  in
  let rec first_safe = function
    | [] -> invalid_arg "scenario: every link is a bridge; pass --fail"
    | (e : Ic_topology.Graph.edge) :: rest -> (
        match Ic_topology.Routing.rebuild ~down:(link_ids e) base with
        | _ -> e
        | exception Invalid_argument _ -> first_safe rest)
  in
  let e = first_safe (Ic_topology.Graph.edges graph) in
  let name i = Ic_topology.Graph.name graph i in
  let n = Ic_topology.Graph.node_count graph in
  let q = max 1 (bins / 4) in
  let burst = max 1 (bins / 8) in
  [
    Ic_scenario.Schedule.Link_fail
      { a = name e.src; b = name e.dst; at = q; duration = Some q };
    Ic_scenario.Schedule.Ddos
      { victim = name (n / 2); at = bins / 2; duration = burst;
        magnitude = 12. };
    Ic_scenario.Schedule.Flash_crowd
      { node = name (min 1 (n - 1)); at = 3 * bins / 4; duration = burst;
        boost = 3. };
  ]

let parse_events ~fails ~reweights ~ddoses ~flashes ~outages =
  List.concat
    [
      List.map
        (fun s ->
          let target, at, dur, x = parse_event_spec ~flag:"fail" s in
          if x <> None then invalid_arg "--fail spec takes no *X";
          let a, b = parse_link ~flag:"fail" target in
          Ic_scenario.Schedule.Link_fail { a; b; at; duration = dur })
        fails;
      List.map
        (fun s ->
          let target, at, dur, x = parse_event_spec ~flag:"reweight" s in
          if dur <> None then invalid_arg "--reweight spec takes no +DUR";
          let weight =
            match x with
            | Some w -> w
            | None -> invalid_arg "--reweight spec needs a *WEIGHT"
          in
          let a, b = parse_link ~flag:"reweight" target in
          Ic_scenario.Schedule.Reweight { a; b; at; weight })
        reweights;
      List.map
        (fun s ->
          let victim, at, dur, x = parse_event_spec ~flag:"ddos" s in
          Ic_scenario.Schedule.Ddos
            { victim; at; duration = require_dur ~flag:"ddos" dur;
              magnitude = Option.value ~default:12. x })
        ddoses;
      List.map
        (fun s ->
          let node, at, dur, x = parse_event_spec ~flag:"flash" s in
          Ic_scenario.Schedule.Flash_crowd
            { node; at; duration = require_dur ~flag:"flash" dur;
              boost = Option.value ~default:3. x })
        flashes;
      List.map
        (fun s ->
          let node, at, dur, x = parse_event_spec ~flag:"outage" s in
          if x <> None then invalid_arg "--outage spec takes no *X";
          Ic_scenario.Schedule.Outage
            { node; at; duration = require_dur ~flag:"outage" dur })
        outages;
    ]

let run_scenario topology family bins seed noise drop_rate corrupt_rate fails
    reweights ddoses flashes outages threshold headroom refit_every window
    recover_after kill_after resume checkpoint_path robust_scale self_heal
    breaker verbose =
  setup_logs verbose;
  let graph = scenario_graph topology in
  let fam =
    match Ic_core.Tm_family.of_name family with
    | Some f -> f
    | None ->
        invalid_arg
          ("unknown TM family " ^ family
         ^ " (expected ic|bimodal|uniform-normal|nucci)")
  in
  let seed_v = Option.value ~default:7 seed in
  let spec =
    {
      Ic_core.Tm_family.default_spec with
      Ic_core.Tm_family.nodes = Ic_topology.Graph.node_count graph;
      bins;
    }
  in
  let base =
    Ic_core.Tm_family.generate fam spec (Ic_prng.Rng.create seed_v)
  in
  let events = parse_events ~fails ~reweights ~ddoses ~flashes ~outages in
  let events = if events = [] then default_events graph bins else events in
  let schedule = { Ic_scenario.Schedule.seed = seed_v; events } in
  let tl = Ic_scenario.Timeline.compile ~graph ~base schedule in
  let total = Ic_scenario.Timeline.bins tl in
  let config =
    (* A scenario is a day, not a multi-week dataset: refit early so the
       ladder sits above the closed form when the first event hits. *)
    let c =
      Ic_runtime.Engine.default_config
        (Ic_scenario.Timeline.base_routing tl)
        spec.Ic_core.Tm_family.binning
    in
    let c = { c with Ic_runtime.Engine.refit_every; window; recover_after } in
    if not self_heal then c
    else
      {
        c with
        Ic_runtime.Engine.gate_refits = true;
        epoch_refit = Some (max 1 (refit_every / 2));
      }
  in
  let breaker_cfg =
    Option.map
      (fun k -> { Ic_runtime.Feed.default_breaker with open_after = k })
      breaker
  in
  let scale =
    if robust_scale then Some Ic_core.Anomaly.robust_scale else None
  in
  Printf.printf
    "scenario %s/%s: %d bins x %d nodes, seed %d (drop %.1f%%, corrupt \
     %.1f%%, noise %.1f%%)\n"
    topology family total
    (Ic_topology.Graph.node_count graph)
    seed_v (100. *. drop_rate) (100. *. corrupt_rate) (100. *. noise);
  let sorted = Ic_scenario.Schedule.sorted schedule in
  Printf.printf "schedule (%d events):\n" (List.length sorted);
  List.iter
    (fun e ->
      Printf.printf "  bin %5d  %s\n"
        (Ic_scenario.Schedule.event_bin e)
        (Ic_scenario.Schedule.describe e))
    sorted;
  let mk_feed engine =
    Ic_scenario.Runner.feed ~noise_sigma:noise ~drop_rate ~corrupt_rate
      ~telemetry:(Ic_runtime.Engine.telemetry engine) ?breaker:breaker_cfg tl
      ~seed:seed_v
  in
  if self_heal then
    Printf.printf
      "self-heal: refit gating on (threshold %g, quarantine limit %d), \
       epoch refit after %d bins\n"
      config.Ic_runtime.Engine.gate_threshold
      config.Ic_runtime.Engine.quarantine_limit
      (Option.value ~default:0 config.Ic_runtime.Engine.epoch_refit);
  (match breaker_cfg with
  | Some b ->
      Printf.printf
        "feed breaker: open after %d faulted bins, cooldown %d, fault \
         fraction %.2f\n"
        b.Ic_runtime.Feed.open_after b.Ic_runtime.Feed.cooldown
        b.Ic_runtime.Feed.fault_frac
  | None -> ());
  let run_full () =
    let engine = Ic_runtime.Engine.create config in
    let seg = Ic_scenario.Runner.play engine (mk_feed engine) tl in
    (engine, seg)
  in
  let engine, segment =
    match kill_after with
    | Some k when k > 0 && k < total ->
        let engine0 = Ic_runtime.Engine.create config in
        let head =
          Ic_scenario.Runner.play ~upto:k engine0 (mk_feed engine0) tl
        in
        Ic_runtime.Checkpoint.save ~path:checkpoint_path engine0;
        Printf.printf "killed after %d bins; checkpoint written to %s\n" k
          checkpoint_path;
        if not resume then (engine0, head)
        else begin
          match
            Ic_runtime.Checkpoint.load ~path:checkpoint_path ~config
          with
          | Error e ->
              prerr_endline e;
              exit 1
          | Ok engine1 ->
              let feed = mk_feed engine1 in
              Ic_runtime.Feed.skip feed k;
              Ic_scenario.Runner.resume_routing engine1 tl;
              let tail = Ic_scenario.Runner.play engine1 feed tl in
              Printf.printf "resumed from bin %d, processed %d more bins\n" k
                (Array.length tail.Ic_scenario.Runner.estimates);
              let combined =
                {
                  Ic_scenario.Runner.estimates =
                    Array.append head.estimates tail.estimates;
                  levels = Array.append head.levels tail.levels;
                  clamped = head.clamped + tail.clamped;
                  applied = head.applied @ tail.applied;
                }
              in
              let _, shadow = run_full () in
              let identical =
                Ic_runtime.Replay.bit_identical combined.estimates
                  shadow.Ic_scenario.Runner.estimates
              in
              Printf.printf
                "resume check: estimates bit-identical to uninterrupted \
                 run: %s\n"
                (if identical then "yes" else "NO");
              if not identical then exit 1;
              (engine1, combined)
        end
    | _ -> run_full ()
  in
  Printf.printf "processed %d bins; final prior rung: %s\n"
    (Array.length segment.Ic_scenario.Runner.estimates)
    (Ic_runtime.Degrade.level_name (Ic_runtime.Engine.level engine));
  Printf.printf "topology timeline (%d boundary events applied live):\n"
    (List.length segment.applied);
  List.iter
    (fun (b, note) -> Printf.printf "  bin %5d  %s\n" b note)
    tl.Ic_scenario.Timeline.topo_notes;
  let transitions = Ic_runtime.Engine.transitions engine in
  Printf.printf "degradation transitions (%d):\n" (List.length transitions);
  List.iter
    (fun (tr : Ic_runtime.Degrade.transition) ->
      Printf.printf "  bin %5d  %s -> %s  (%s)\n" tr.bin
        (Ic_runtime.Degrade.level_name tr.from_)
        (Ic_runtime.Degrade.level_name tr.to_)
        (Ic_runtime.Degrade.reason_name tr.reason))
    transitions;
  if Array.length segment.Ic_scenario.Runner.estimates = total then begin
    let v =
      Ic_scenario.Runner.evaluate ~threshold ?scale ~headroom tl
        ~estimates:segment.Ic_scenario.Runner.estimates
    in
    let s = v.Ic_scenario.Runner.score in
    let ev = s.Ic_scenario.Score.evaluation in
    Printf.printf "anomaly scoring (threshold %g, floor %.3g bytes):\n"
      s.Ic_scenario.Score.threshold s.Ic_scenario.Score.min_bytes;
    (match scale with
    | Some (Ic_core.Anomaly.Rolling_quantile { window; q }) ->
        Printf.printf "  scale: rolling-quantile (window %d, q %.2f)\n"
          window q
    | _ -> ());
    Printf.printf
      "  detections %d (tp %d, fp %d, fn %d): precision %.3f, recall %.3f\n"
      (List.length s.Ic_scenario.Score.detections)
      ev.Ic_core.Anomaly.true_positives ev.Ic_core.Anomaly.false_positives
      ev.Ic_core.Anomaly.false_negatives ev.Ic_core.Anomaly.precision
      ev.Ic_core.Anomaly.recall;
    List.iter
      (fun (es : Ic_scenario.Score.event_score) ->
        match (es.detected_at, es.time_to_detect) with
        | Some b, Some ttd ->
            Printf.printf "  %s %s: detected at bin %d (ttd %d)\n" es.kind
              es.target b ttd
        | _ -> Printf.printf "  %s %s: missed\n" es.kind es.target)
      s.Ic_scenario.Score.events;
    let p = v.Ic_scenario.Runner.provision in
    Printf.printf "what-if provisioning (headroom %.2f, %d links):\n"
      p.Ic_scenario.Provision.headroom p.Ic_scenario.Provision.edge_count;
    Printf.printf
      "  max utilization: truth-planned %.3f, estimate-planned %.3f\n"
      p.Ic_scenario.Provision.max_util_true
      p.Ic_scenario.Provision.max_util_est;
    Printf.printf "  regret %+.3f (worst link %s), underprovisioned: %d\n"
      p.Ic_scenario.Provision.regret p.Ic_scenario.Provision.worst_link
      p.Ic_scenario.Provision.underprovisioned
  end
  else
    Printf.printf "partial run (%d of %d bins): verdict skipped (add \
                   --resume to finish)\n"
      (Array.length segment.Ic_scenario.Runner.estimates)
      total;
  print_string
    (Ic_runtime.Telemetry.dump ~with_timings:false
       (Ic_runtime.Engine.telemetry engine))

(* --- serve ---------------------------------------------------------------- *)

(* Estimation-as-a-service: replay [bins] through the engine with a
   deterministic bin clock — publishing each bin's estimate to the serving
   source as it lands — then open the socket and answer queries until
   [stop_after] requests are served or a signal arrives. The replay runs
   to completion before the first accept, so every query against a given
   (dataset, seed, bins) triple sees the same estimate: the property the
   cram suite pins. *)
let run_serve which weeks seed bins socket port workers queue_cap max_inflight
    stop_after read_timeout kill_after resume checkpoint_path trace verbose =
  setup_logs verbose;
  let tracer = make_tracer trace in
  let ds = load_dataset (dataset_of_string which) weeks seed in
  let series = ds.Ic_datasets.Dataset.series in
  let routing = Ic_topology.Routing.build ds.Ic_datasets.Dataset.graph in
  let config =
    Ic_runtime.Engine.default_config routing series.Ic_traffic.Series.binning
  in
  let feed_seed = Option.value ~default:7 seed in
  let fresh_feed () = Ic_runtime.Feed.create routing series ~seed:feed_seed in
  let total =
    let len = Ic_traffic.Series.length series in
    match bins with Some b -> min b len | None -> len
  in
  let registry = Ic_obs.Metrics.create () in
  let telemetry = Ic_runtime.Telemetry.create ~registry () in
  let source = Ic_serve.Source.create routing in
  let publish ~bin (out : Ic_runtime.Engine.output) =
    Ic_serve.Source.publish source ~bin
      ~level:(Ic_runtime.Degrade.rank out.Ic_runtime.Engine.level)
      out.Ic_runtime.Engine.estimate
  in
  Printf.printf "replaying %s: %d bins x %d nodes\n" which total
    (Ic_traffic.Series.size series);
  let engine =
    match kill_after with
    | Some k when k > 0 && k < total ->
        (* Kill/resume under load: checkpoint mid-replay, restore, finish,
           and require the served estimates bit-identical to an
           uninterrupted replay before opening the socket. *)
        let engine0 = Ic_runtime.Engine.create ~telemetry ~tracer config in
        let head =
          Ic_runtime.Replay.run ~max_bins:k ~on_bin:publish engine0
            (fresh_feed ())
        in
        Ic_runtime.Checkpoint.save ~path:checkpoint_path engine0;
        Printf.printf "killed after %d bins; checkpoint written to %s\n" k
          checkpoint_path;
        if not resume then engine0
        else begin
          match Ic_runtime.Checkpoint.load ~path:checkpoint_path ~config with
          | Error e ->
              prerr_endline e;
              exit 1
          | Ok engine1 ->
              let feed = fresh_feed () in
              Ic_runtime.Feed.skip feed k;
              let tail =
                Ic_runtime.Replay.run ~max_bins:(total - k) ~on_bin:publish
                  engine1 feed
              in
              let shadow =
                let e = Ic_runtime.Engine.create config in
                Ic_runtime.Replay.run ~max_bins:total e (fresh_feed ())
              in
              let identical =
                Ic_runtime.Replay.bit_identical
                  (Array.append head.Ic_runtime.Replay.estimates
                     tail.Ic_runtime.Replay.estimates)
                  shadow.Ic_runtime.Replay.estimates
              in
              Printf.printf
                "resume check: served estimates bit-identical to \
                 uninterrupted run: %s\n"
                (if identical then "yes" else "NO");
              if not identical then exit 1;
              engine1
        end
    | _ ->
        let engine = Ic_runtime.Engine.create ~telemetry ~tracer config in
        ignore
          (Ic_runtime.Replay.run ~max_bins:total ~on_bin:publish engine
             (fresh_feed ()));
        engine
  in
  (match Ic_serve.Source.latest source with
  | Some p ->
      Printf.printf "published bin %d at rung %s\n" p.Ic_serve.Source.bin
        (Ic_runtime.Degrade.level_name
           (Ic_runtime.Degrade.level_of_rank p.Ic_serve.Source.level))
  | None -> print_endline "no bins replayed; serving without an estimate");
  let handler =
    Ic_serve.Handler.create ~tracer ~registry [ (which, source) ]
  in
  let listen =
    match socket with
    | Some path -> Ic_serve.Server.Unix_path path
    | None -> Ic_serve.Server.Tcp ("127.0.0.1", port)
  in
  let server_config =
    {
      (Ic_serve.Server.default_config listen) with
      Ic_serve.Server.workers;
      queue_cap;
      max_inflight;
      read_timeout;
      stop_after;
    }
  in
  let on_drain () =
    match checkpoint_path with
    | "" -> ()
    | path ->
        Ic_runtime.Checkpoint.save ~path engine;
        Printf.printf "checkpoint flushed to %s\n" path
  in
  let server = Ic_serve.Server.start ~on_drain server_config handler in
  (match listen with
  | Ic_serve.Server.Unix_path path ->
      Printf.printf "serving on unix:%s (%d workers)\n%!" path workers
  | Ic_serve.Server.Tcp (host, _) ->
      let port =
        match Ic_serve.Server.address server with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> 0
      in
      Printf.printf "serving on %s:%d (%d workers)\n%!" host port workers);
  let stop _ = Ic_serve.Server.stop server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Ic_serve.Server.wait server;
  Printf.printf "drained after %d answered requests\n"
    (Ic_serve.Server.answered server);
  print_endline "serve counters:";
  List.iter
    (fun (name, v) ->
      if String.length name >= 6 && String.sub name 0 6 = "serve." then
        Printf.printf "  %-24s %d\n" name v)
    (Ic_serve.Handler.counters handler);
  export_trace tracer trace

(* --- loadgen -------------------------------------------------------------- *)

let run_loadgen socket host port queries rate connections seed json paced
    report_mode =
  let listen =
    match socket with
    | Some path -> Ic_serve.Server.Unix_path path
    | None -> Ic_serve.Server.Tcp (host, port)
  in
  let config =
    {
      (Ic_serve.Loadgen.default_config listen) with
      Ic_serve.Loadgen.queries;
      rate;
      connections;
      seed;
      json;
      paced;
    }
  in
  let timings =
    match report_mode with
    | "counts" -> false
    | "full" -> true
    | s -> invalid_arg ("unknown report mode " ^ s ^ " (counts|full)")
  in
  let outcome = Ic_serve.Loadgen.run config in
  print_string (Ic_serve.Loadgen.report ~timings outcome);
  if outcome.Ic_serve.Loadgen.transport_failures > 0 then exit 1

(* --- topology ------------------------------------------------------------ *)

let run_topology name out =
  let graph =
    match name with
    | "geant" -> Ic_topology.Topologies.geant_like ()
    | "totem" -> Ic_topology.Topologies.totem_like ()
    | "abilene" -> Ic_topology.Topologies.abilene_like ()
    | s -> invalid_arg ("unknown topology " ^ s)
  in
  (match out with
  | Some path ->
      Ic_topology.Topo_io.save path graph;
      Printf.printf "wrote %s to %s\n" name path
  | None ->
      Printf.printf "%d nodes, %d directed links\n"
        (Ic_topology.Graph.node_count graph)
        (Ic_topology.Graph.edge_count graph);
      List.iter
        (fun (e : Ic_topology.Graph.edge) ->
          if e.src < e.dst then
            Printf.printf "  %s -- %s (weight %g)\n"
              (Ic_topology.Graph.name graph e.src)
              (Ic_topology.Graph.name graph e.dst)
              e.weight)
        (Ic_topology.Graph.edges graph))

(* --- cmdliner glue ------------------------------------------------------ *)

open Cmdliner

let stride_arg =
  let doc = "Keep every STRIDE-th time bin (1 = full resolution)." in
  Arg.(value & opt int 1 & info [ "stride" ] ~docv:"STRIDE" ~doc)

let weeks_arg =
  let doc = "Number of weeks to generate (dataset default if omitted)." in
  Arg.(value & opt (some int) None & info [ "weeks" ] ~docv:"WEEKS" ~doc)

let seed_arg =
  let doc = "Generator seed (dataset default if omitted)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let dataset_arg =
  let doc = "Dataset: geant or totem." in
  Arg.(value & opt string "geant" & info [ "dataset"; "d" ] ~docv:"NAME" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the estimation hot paths (1 = sequential). Results \
     are bit-identical at every value; only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let engine_estimator_arg =
  let doc =
    "Estimator family driving every bin ('ic' is the native self-calibrating \
     path; anything else dispatches through the estimator registry — see \
     'ic-lab shootout' for the roster)."
  in
  Arg.(value & opt string "ic" & info [ "estimator" ] ~docv:"NAME" ~doc)

let trace_out_arg =
  let doc =
    "Record execution spans (engine/pipeline stages, pool regions) and \
     write them as JSON Lines to FILE. Tracing only observes: results are \
     bit-identical with or without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let experiment_cmd =
  let ids =
    let doc = "Experiment ids (or 'all')." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let out_dir =
    let doc = "Directory for CSV series output." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose logging.")
  in
  let doc = "Regenerate the paper's figures (see DESIGN.md for the index)." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(const run_experiments $ ids $ stride_arg $ out_dir $ verbose)

let gen_cmd =
  let out =
    let doc = "Output CSV path." in
    Arg.(value & opt string "tm_series.csv" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let doc = "Generate a synthetic TM dataset and write it as CSV." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run_gen $ dataset_arg $ weeks_arg $ seed_arg $ out)

let fit_cmd =
  let week =
    let doc = "Week to fit (0-based)." in
    Arg.(value & opt int 0 & info [ "week" ] ~docv:"WEEK" ~doc)
  in
  let input =
    let doc =
      "Fit a TM series from a CSV file (bin,origin,destination,bytes — the \
       format written by 'gen') instead of a built-in dataset."
    in
    Arg.(value & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc)
  in
  let nodes =
    let doc = "Node count of the CSV series (required with --input)." in
    Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let bin_minutes =
    let doc = "Bin width of the CSV series in minutes." in
    Arg.(value & opt int 5 & info [ "bin-minutes" ] ~docv:"MIN" ~doc)
  in
  let doc = "Fit the stable-fP IC model and print parameters." in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(
      const run_fit $ dataset_arg $ weeks_arg $ seed_arg $ week $ stride_arg
      $ input $ nodes $ bin_minutes)

let estimate_cmd =
  let calib =
    let doc = "Calibration week for the IC priors." in
    Arg.(value & opt int 0 & info [ "calib-week" ] ~docv:"WEEK" ~doc)
  in
  let target =
    let doc = "Week to estimate." in
    Arg.(value & opt int 1 & info [ "week" ] ~docv:"WEEK" ~doc)
  in
  let prior =
    let doc = "Prior: gravity, measured, stable-fp or stable-f." in
    Arg.(value & opt string "stable-fp" & info [ "prior" ] ~docv:"PRIOR" ~doc)
  in
  let estimator =
    let doc =
      "Estimate with a registered estimator family instead of the --prior \
       pipeline: calibrated on --calib-week, applied to --week through the \
       generic batch driver. Unknown names list the registry."
    in
    Arg.(
      value & opt (some string) None & info [ "estimator" ] ~docv:"NAME" ~doc)
  in
  let doc = "Run the three-step TM estimation pipeline on one week." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      const run_estimate $ dataset_arg $ weeks_arg $ seed_arg $ calib $ target
      $ prior $ estimator $ stride_arg $ jobs_arg $ trace_out_arg)

let trace_cmd =
  let duration =
    let doc = "Capture length in seconds." in
    Arg.(value & opt float 7200. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let rate =
    let doc = "Connections initiated per 5-minute bin per node pair." in
    Arg.(value & opt float 220. & info [ "rate" ] ~docv:"CONNS" ~doc)
  in
  let doc =
    "Simulate bidirectional packet traces at IPLS and measure f per bin \
     (the paper's Section 5.2 procedure)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ seed_arg $ duration $ rate)

let whatif_cmd =
  let node =
    let doc = "PoP receiving a flash crowd (e.g. gr)." in
    Arg.(value & opt (some string) None & info [ "flash-crowd" ] ~docv:"POP" ~doc)
  in
  let boost =
    let doc = "Preference multiplier for the flash-crowd PoP." in
    Arg.(value & opt float 10. & info [ "boost" ] ~docv:"FACTOR" ~doc)
  in
  let f_new =
    let doc = "Override the forward fraction (application-mix shift)." in
    Arg.(value & opt (some float) None & info [ "set-f" ] ~docv:"F" ~doc)
  in
  let topology =
    let doc = "Topology file (see 'ic-lab topology' for the format)." in
    Arg.(value & opt (some file) None & info [ "topology" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "What-if study on a synthetic day of traffic: flash crowds and \
     application-mix shifts, reported as per-link peak-load deltas."
  in
  Cmd.v (Cmd.info "whatif" ~doc)
    Term.(const run_whatif $ node $ boost $ f_new $ seed_arg $ topology)

let stream_cmd =
  let bins =
    let doc = "Stop after BINS bins (full replay if omitted)." in
    Arg.(value & opt (some int) None & info [ "bins" ] ~docv:"BINS" ~doc)
  in
  let drop_rate =
    let doc = "Probability a link poll is lost per bin." in
    Arg.(value & opt float 0. & info [ "drop-rate" ] ~docv:"P" ~doc)
  in
  let corrupt_rate =
    let doc = "Probability a surviving poll is corrupted per bin." in
    Arg.(value & opt float 0. & info [ "corrupt-rate" ] ~docv:"P" ~doc)
  in
  let noise =
    let doc = "SNMP multiplicative noise sigma." in
    Arg.(value & opt float 0.01 & info [ "noise" ] ~docv:"SIGMA" ~doc)
  in
  let kill_after =
    let doc = "Kill the engine after BINS bins and write a checkpoint." in
    Arg.(value & opt (some int) None & info [ "kill-after" ] ~docv:"BINS" ~doc)
  in
  let resume =
    let doc =
      "After --kill-after, restore from the checkpoint, replay the rest of \
       the feed, and verify the estimates are bit-identical to an \
       uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let checkpoint =
    let doc = "Checkpoint file path." in
    Arg.(
      value
      & opt string "ic-engine.ckpt"
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let refit_every =
    let doc = "Refit the stable-fP parameters every BINS bins." in
    Arg.(value & opt (some int) None & info [ "refit-every" ] ~docv:"BINS" ~doc)
  in
  let window =
    let doc = "Sliding refit window length in bins." in
    Arg.(value & opt (some int) None & info [ "window" ] ~docv:"BINS" ~doc)
  in
  let recover_after =
    let doc = "Healthy bins required per upward ladder step." in
    Arg.(
      value & opt (some int) None & info [ "recover-after" ] ~docv:"BINS" ~doc)
  in
  let telemetry =
    let doc = "Telemetry detail: counters (deterministic) or full." in
    Arg.(value & opt string "counters" & info [ "telemetry" ] ~docv:"MODE" ~doc)
  in
  let shards =
    let doc =
      "Split the replay into N contiguous time ranges and run one \
       independent engine per shard on the worker pool, with merged \
       telemetry and an atomic all-shard checkpoint (with --kill-after, \
       the kill point is per shard)."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let open_loop =
    let doc =
      "Overlay an open-loop connection workload on the SNMP feed: Poisson \
       arrivals at RATE per second, each carrying a flow size from the \
       built-in empirical CDF, binned onto the link loads. Deterministic \
       for a given --seed (the same schedule the loadgen verb uses)."
    in
    Arg.(
      value & opt (some float) None & info [ "open-loop" ] ~docv:"RATE" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose logging.")
  in
  let doc =
    "Replay a dataset as a live link-load feed through the streaming \
     estimation engine, with injected faults, degradation ladder, \
     checkpoint/resume and telemetry."
  in
  Cmd.v (Cmd.info "stream" ~doc)
    Term.(
      const run_stream $ dataset_arg $ weeks_arg $ seed_arg $ bins $ drop_rate
      $ corrupt_rate $ noise $ open_loop $ kill_after $ resume $ checkpoint
      $ refit_every $ window $ recover_after $ telemetry
      $ engine_estimator_arg $ shards $ jobs_arg $ trace_out_arg $ verbose)

let metrics_cmd =
  let bins =
    let doc = "Replay BINS bins before exposing (full replay if omitted)." in
    Arg.(value & opt (some int) None & info [ "bins" ] ~docv:"BINS" ~doc)
  in
  let drop_rate =
    let doc = "Probability a link poll is lost per bin." in
    Arg.(value & opt float 0. & info [ "drop-rate" ] ~docv:"P" ~doc)
  in
  let corrupt_rate =
    let doc = "Probability a surviving poll is corrupted per bin." in
    Arg.(value & opt float 0. & info [ "corrupt-rate" ] ~docv:"P" ~doc)
  in
  let noise =
    let doc = "SNMP multiplicative noise sigma." in
    Arg.(value & opt float 0.01 & info [ "noise" ] ~docv:"SIGMA" ~doc)
  in
  let serve_queries =
    let doc =
      "After the replay, answer N deterministic serving-plane queries \
       (cycling ping/latest-tm/od-flow/topology/what-if) against the final \
       estimate through a handler sharing the engine's registry, so the \
       exposition shows serve counters and the request-duration histogram \
       next to engine telemetry."
    in
    Arg.(value & opt int 0 & info [ "serve-queries" ] ~docv:"N" ~doc)
  in
  let doc =
    "Replay a dataset through the streaming engine and print its metrics \
     registry in Prometheus text exposition format (counters and per-stage \
     duration histograms). A deterministic internal clock makes the output \
     a pure function of the observation stream."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run_metrics $ dataset_arg $ weeks_arg $ seed_arg $ bins
      $ drop_rate $ corrupt_rate $ noise $ engine_estimator_arg
      $ serve_queries)

let shootout_cmd =
  let datasets =
    let doc =
      "Comma-separated datasets to rank on (abilene, geant, totem; empty = \
       all)."
    in
    Arg.(
      value
      & opt string "abilene,geant,totem"
      & info [ "datasets" ] ~docv:"NAMES" ~doc)
  in
  let estimators =
    let doc =
      "Comma-separated estimator names (default: the whole registry)."
    in
    Arg.(
      value & opt (some string) None & info [ "estimators" ] ~docv:"NAMES" ~doc)
  in
  let folds =
    let doc = "Cross-validation folds." in
    Arg.(value & opt int 3 & info [ "folds" ] ~docv:"K" ~doc)
  in
  let seed =
    let doc = "Seed for data generation and the train/test split." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let timing =
    let doc =
      "Per-bin latency measurement: on (wall-clock median) or off \
       (deterministic, pinnable output)."
    in
    Arg.(value & opt string "on" & info [ "timing" ] ~docv:"MODE" ~doc)
  in
  let stride =
    let doc = "Keep every STRIDE-th bin of the evaluation week." in
    Arg.(value & opt int 21 & info [ "stride" ] ~docv:"STRIDE" ~doc)
  in
  let doc =
    "Rank every registered estimator by cross-validated error and per-bin \
     latency on the synthetic datasets, and mark the Pareto frontier."
  in
  Cmd.v (Cmd.info "shootout" ~doc)
    Term.(
      const run_shootout $ datasets $ estimators $ folds $ seed $ stride
      $ timing)

let scenario_cmd =
  let topology =
    let doc = "Topology: geant|totem|abilene." in
    Arg.(value & opt string "geant" & info [ "topology" ] ~docv:"NAME" ~doc)
  in
  let family =
    let doc = "Base TM family: ic|bimodal|uniform-normal|nucci." in
    Arg.(value & opt string "ic" & info [ "family" ] ~docv:"NAME" ~doc)
  in
  let bins =
    let doc = "Scenario length in 5-minute bins." in
    Arg.(value & opt int 96 & info [ "bins" ] ~docv:"BINS" ~doc)
  in
  let noise =
    let doc = "SNMP multiplicative noise sigma." in
    Arg.(value & opt float 0.01 & info [ "noise" ] ~docv:"SIGMA" ~doc)
  in
  let drop_rate =
    let doc = "Probability a link poll is lost per bin." in
    Arg.(value & opt float 0. & info [ "drop-rate" ] ~docv:"P" ~doc)
  in
  let corrupt_rate =
    let doc = "Probability a surviving poll is corrupted per bin." in
    Arg.(value & opt float 0. & info [ "corrupt-rate" ] ~docv:"P" ~doc)
  in
  let fails =
    let doc =
      "Fail link A-B at bin AT, restored DUR bins later (permanent if +DUR \
       is omitted). Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "fail" ] ~docv:"A-B@AT[+DUR]" ~doc)
  in
  let reweights =
    let doc = "Set link A-B's IGP weight to W at bin AT. Repeatable." in
    Arg.(
      value & opt_all string [] & info [ "reweight" ] ~docv:"A-B@AT*W" ~doc)
  in
  let ddoses =
    let doc =
      "DDoS PoP from bin AT for DUR bins; each attacker adds MAG x the \
       mean OD volume (default 12). Repeatable."
    in
    Arg.(
      value & opt_all string [] & info [ "ddos" ] ~docv:"POP@AT+DUR[*MAG]" ~doc)
  in
  let flashes =
    let doc =
      "Flash crowd toward PoP from bin AT for DUR bins, demand x BOOST \
       (default 3). Repeatable."
    in
    Arg.(
      value & opt_all string []
      & info [ "flash" ] ~docv:"POP@AT+DUR[*BOOST]" ~doc)
  in
  let outages =
    let doc =
      "PoP outage from bin AT for DUR bins (traffic collapses to 2%; \
       unlabeled — the excess detector must not flag it). Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "outage" ] ~docv:"POP@AT+DUR" ~doc)
  in
  let threshold =
    let doc = "Anomaly detector score threshold." in
    Arg.(value & opt float 5. & info [ "threshold" ] ~docv:"T" ~doc)
  in
  let headroom =
    let doc = "Target peak utilization for what-if link provisioning." in
    Arg.(value & opt float 0.7 & info [ "headroom" ] ~docv:"H" ~doc)
  in
  let refit_every =
    let doc = "Refit the stable-fP parameters every BINS bins." in
    Arg.(value & opt int 8 & info [ "refit-every" ] ~docv:"BINS" ~doc)
  in
  let window =
    let doc = "Sliding refit window length in bins." in
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"BINS" ~doc)
  in
  let recover_after =
    let doc = "Healthy bins required per upward ladder step." in
    Arg.(value & opt int 4 & info [ "recover-after" ] ~docv:"BINS" ~doc)
  in
  let kill_after =
    let doc =
      "Kill the engine after BINS bins (mid-scenario) and write a \
       checkpoint."
    in
    Arg.(value & opt (some int) None & info [ "kill-after" ] ~docv:"BINS" ~doc)
  in
  let resume =
    let doc =
      "After --kill-after, restore from the checkpoint, re-install the \
       scenario's live routing epoch, finish the timeline, and verify the \
       estimates are bit-identical to an uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let checkpoint =
    let doc = "Checkpoint file path." in
    Arg.(
      value
      & opt string "ic-scenario.ckpt"
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let robust_scale =
    let doc =
      "Score with the mismatch-robust rolling-quantile studentization \
       instead of the historical MAD — recovers detection when the base \
       traffic violates the IC mean structure (e.g. --family bimodal)."
    in
    Arg.(value & flag & info [ "robust-scale" ] ~doc)
  in
  let self_heal =
    let doc =
      "Enable the engine's self-healing knobs: anomaly-gated refits \
       (flagged bins quarantined out of the stable-fP window, bounded by \
       the forced-refit escape hatch) and an early post-topology-change \
       refit at half the refit cadence."
    in
    Arg.(value & flag & info [ "self-heal" ] ~doc)
  in
  let breaker =
    let doc =
      "Put a circuit breaker on the feed: open after K consecutive \
       mostly-faulted bins, carry the last clean values while open, \
       half-open probe after the cooldown."
    in
    Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"K" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose logging.")
  in
  let doc =
    "Run a composable failure/anomaly/what-if scenario: a seeded schedule \
     of link failures, routing churn, DDoS, flash crowds and outages is \
     compiled into an adversarial timeline and replayed through the \
     streaming engine; the verdict reports detection precision/recall and \
     time-to-detect, capacity-planning regret, degradation transitions and \
     telemetry — all deterministic for a given seed."
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    Term.(
      const run_scenario $ topology $ family $ bins $ seed_arg $ noise
      $ drop_rate $ corrupt_rate $ fails $ reweights $ ddoses $ flashes
      $ outages $ threshold $ headroom $ refit_every $ window $ recover_after
      $ kill_after $ resume $ checkpoint $ robust_scale $ self_heal $ breaker
      $ verbose)

let socket_arg =
  let doc = "Unix-domain socket path (preferred for local serving)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let bins =
    let doc = "Replay BINS bins before serving (full replay if omitted)." in
    Arg.(value & opt (some int) None & info [ "bins" ] ~docv:"BINS" ~doc)
  in
  let port =
    let doc = "TCP port on 127.0.0.1 when no --socket is given (0 = ephemeral)." in
    Arg.(value & opt int 4317 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let workers =
    let doc = "Worker domains serving connections." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_cap =
    let doc =
      "Accepted connections allowed to wait for a worker; beyond it new \
       connections are shed with an explicit frame."
    in
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let max_inflight =
    let doc =
      "Requests processed concurrently across workers; beyond it requests \
       are shed with an explicit frame."
    in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let stop_after =
    let doc =
      "Drain and exit after N answered requests (run until SIGINT/SIGTERM \
       if omitted) — the deterministic shutdown tests rely on."
    in
    Arg.(value & opt (some int) None & info [ "stop-after" ] ~docv:"N" ~doc)
  in
  let read_timeout =
    let doc = "Per-connection read timeout in seconds." in
    Arg.(value & opt float 5. & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let kill_after =
    let doc =
      "Kill the replay after BINS bins and write a checkpoint before \
       serving (with --resume: restore, finish, verify bit-identity)."
    in
    Arg.(value & opt (some int) None & info [ "kill-after" ] ~docv:"BINS" ~doc)
  in
  let resume =
    let doc =
      "After --kill-after, restore from the checkpoint, finish the replay, \
       and verify the published estimates are bit-identical to an \
       uninterrupted run before opening the socket."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let checkpoint =
    let doc =
      "Checkpoint file: written by --kill-after and flushed again on \
       graceful drain (empty string disables the drain flush)."
    in
    Arg.(
      value
      & opt string "ic-engine.ckpt"
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose logging.")
  in
  let doc =
    "Serve the streaming engine's estimates over a socket: latest-TM, \
     per-OD-flow, topology and what-if queries over a length-prefixed \
     binary protocol with a JSON fallback, plus GET /metrics in Prometheus \
     text format. Overload sheds explicitly; shutdown drains gracefully \
     and flushes the checkpoint."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ dataset_arg $ weeks_arg $ seed_arg $ bins $ socket_arg
      $ port $ workers $ queue_cap $ max_inflight $ stop_after $ read_timeout
      $ kill_after $ resume $ checkpoint $ trace_out_arg $ verbose)

let loadgen_cmd =
  let host =
    let doc = "Server host when connecting over TCP." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port =
    let doc = "Server TCP port when no --socket is given." in
    Arg.(value & opt int 4317 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let queries =
    let doc = "Number of queries to send." in
    Arg.(value & opt int 1000 & info [ "queries"; "n" ] ~docv:"N" ~doc)
  in
  let rate =
    let doc = "Open-loop Poisson arrival rate, queries per second." in
    Arg.(value & opt float 10000. & info [ "rate" ] ~docv:"QPS" ~doc)
  in
  let connections =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 2 & info [ "connections"; "c" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc =
      "Workload seed: arrival gaps, flow sizes and the query mix are a \
       pure function of it."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Speak the JSON fallback instead of binary.")
  in
  let paced =
    let doc =
      "Honor the Poisson arrival times in wall-clock (open-loop pacing) \
       instead of sending as fast as the server answers."
    in
    Arg.(value & flag & info [ "paced" ] ~doc)
  in
  let report =
    let doc =
      "Report detail: counts (deterministic: sent/answered taxonomy) or \
       full (adds qps and latency percentiles)."
    in
    Arg.(value & opt string "full" & info [ "report" ] ~docv:"MODE" ~doc)
  in
  let doc =
    "Generate an open-loop query workload against 'ic-lab serve': Poisson \
     arrivals x empirical flow-size CDF x weighted query mix, with \
     explicit shed/error accounting and latency percentiles."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run_loadgen $ socket_arg $ host $ port $ queries $ rate
      $ connections $ seed $ json $ paced $ report)

let topology_cmd =
  let topo_name =
    let doc = "Built-in topology: geant, totem or abilene." in
    Arg.(value & opt string "geant" & info [ "name"; "n" ] ~docv:"NAME" ~doc)
  in
  let topo_out =
    let doc = "Export to a topology file instead of printing." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let doc = "Inspect or export the built-in topologies." in
  Cmd.v (Cmd.info "topology" ~doc)
    Term.(const run_topology $ topo_name $ topo_out)

let main_cmd =
  let doc =
    "laboratory for the independent-connection traffic-matrix model \
     (Erramilli, Crovella, Taft; IMC 2006)"
  in
  Cmd.group (Cmd.info "ic-lab" ~version:"1.0.0" ~doc)
    [ experiment_cmd; gen_cmd; fit_cmd; estimate_cmd; shootout_cmd;
      stream_cmd; scenario_cmd; serve_cmd; loadgen_cmd; trace_cmd;
      metrics_cmd; whatif_cmd; topology_cmd ]

let () = exit (Cmd.eval main_cmd)
