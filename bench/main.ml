(* Bechamel benchmarks: one kernel per reproduced figure, the ablation
   comparisons called out in DESIGN.md, and substrate micro-benchmarks.

   All inputs are precomputed so the staged closures measure only the kernel
   under study. Run with: dune exec bench/main.exe

   Every benchmark runs one discarded warmup measurement (JIT-free OCaml
   still wants hot caches, primed branch predictors, and a grown minor heap)
   followed by [--repeat N] (default 3) recorded measurements, reporting the
   per-test MINIMUM — the noise-robust estimator for deterministic kernels.
   Before this, a single 0.4 s OLS pass could rank traced-on above
   traced-off on an idle machine; min-of-N makes such inversions
   reproducible noise rather than reportable results.

   Pass [--json <path>] to also write the results as a machine-readable
   BENCH_<label>.json (test name -> ns/run) so the performance trajectory can
   be tracked across PRs; see "Performance architecture" in DESIGN.md and
   scripts/bench_diff.sh for comparing two such files. *)

open Bechamel
module Instance = Toolkit.Instance

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let geant_graph = Ic_topology.Topologies.geant_like ()

let routing = Ic_topology.Routing.build geant_graph

let binning = Ic_timeseries.Timebin.five_min

(* A small clean IC world for fitting kernels: 64 bins, 22 nodes. *)
let fit_series =
  let n = 22 and bins = 64 in
  let rng = Ic_prng.Rng.create 42 in
  let preference =
    Ic_linalg.Vec.normalize_sum
      (Array.init n (fun _ -> Ic_prng.Sampler.lognormal rng ~mu:(-4.3) ~sigma:1.7))
  in
  let base = Array.init n (fun _ -> Ic_prng.Sampler.lognormal rng ~mu:16. ~sigma:1.3) in
  let phase = Array.init n (fun _ -> Ic_prng.Rng.float_range rng 0. 6.28) in
  let activity =
    Array.init bins (fun t ->
        Array.init n (fun i ->
            base.(i) *. (1.3 +. sin ((float_of_int t /. 9.) +. phase.(i)))))
  in
  let params : Ic_core.Params.stable_fp = { f = 0.22; preference; activity } in
  let series = Ic_core.Model.stable_fp params binning in
  let rng = Ic_prng.Rng.create 43 in
  Ic_traffic.Series.map
    (fun tm ->
      Ic_traffic.Tm.init (Ic_traffic.Tm.size tm) (fun i j ->
          Ic_traffic.Tm.get tm i j
          *. exp (Ic_prng.Sampler.normal rng ~mu:0. ~sigma:0.1)))
    series

let one_bin = Ic_traffic.Series.tm fit_series 30

let one_bin_vec = Ic_traffic.Tm.to_vector one_bin

let link_loads = Ic_topology.Routing.link_loads routing one_bin_vec

let gravity_prior = Ic_gravity.Gravity.of_tm one_bin

let ingress = Ic_traffic.Marginals.ingress one_bin

let egress = Ic_traffic.Marginals.egress one_bin

let fitted = Ic_core.Fit.fit_stable_fp fit_series

(* Trace fixture for the fig4 kernel: a modest 20-minute capture. *)
let trace =
  let ab =
    Ic_datasets.Abilene.generate ~seed:7 ~duration_s:1200.
      ~connections_per_bin:120. ()
  in
  ab.trace_clev

(* NNLS fixture with active constraints. *)
let nnls_g, nnls_c =
  let n = 22 in
  let rng = Ic_prng.Rng.create 5 in
  let a =
    Ic_linalg.Mat.init (2 * n) n (fun _ _ -> Ic_prng.Rng.float_range rng (-1.) 1.)
  in
  let b = Array.init (2 * n) (fun _ -> Ic_prng.Rng.float_range rng (-1.) 2.) in
  (Ic_linalg.Mat.gram a, Ic_linalg.Mat.mulv_t a b)

let spd_122 =
  let rng = Ic_prng.Rng.create 6 in
  let m = 122 in
  let b = Ic_linalg.Mat.init m m (fun _ _ -> Ic_prng.Rng.float_range rng (-1.) 1.) in
  Ic_linalg.Mat.add (Ic_linalg.Mat.gram b)
    (Ic_linalg.Mat.scale (float_of_int m) (Ic_linalg.Mat.identity m))

let qr_tall =
  let rng = Ic_prng.Rng.create 7 in
  Ic_linalg.Mat.init 44 22 (fun _ _ -> Ic_prng.Rng.float_range rng (-1.) 1.)

let preference_sample = fitted.params.preference

(* Whole-series fixtures for the batched estimation entry points. *)
let series_link_loads =
  Array.init
    (Ic_traffic.Series.length fit_series)
    (fun k ->
      Ic_topology.Routing.link_loads routing
        (Ic_traffic.Tm.to_vector (Ic_traffic.Series.tm fit_series k)))

let series_priors =
  Array.init
    (Ic_traffic.Series.length fit_series)
    (fun k -> Ic_gravity.Gravity.of_tm (Ic_traffic.Series.tm fit_series k))

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                          *)
(* ------------------------------------------------------------------ *)

let figure_tests =
  [
    Test.make ~name:"fig3/fit-stable-fp-64bins"
      (Staged.stage (fun () -> Ic_core.Fit.fit_stable_fp fit_series));
    Test.make ~name:"fig3/gravity-fit-64bins"
      (Staged.stage (fun () -> Ic_core.Fit.gravity_fit fit_series));
    Test.make ~name:"fig4/trace-f-measurement"
      (Staged.stage (fun () -> Ic_netflow.Trace.measure_f trace ~bin_s:300.));
    Test.make ~name:"fig5/weekly-fit-stable-f"
      (Staged.stage (fun () -> Ic_core.Fit.fit_stable_f fit_series));
    Test.make ~name:"fig7/tail-model-comparison"
      (Staged.stage (fun () ->
           Ic_stats.Fit_dist.compare_tail_models preference_sample));
    Test.make ~name:"fig9/acf-daily-period"
      (Staged.stage (fun () ->
           let series = Ic_traffic.Series.ingress_series fit_series 0 in
           Ic_timeseries.Acf.periodicity_strength series ~period:16));
    Test.make ~name:"fig11/tomogravity-one-bin"
      (Staged.stage (fun () ->
           Ic_estimation.Tomogravity.estimate routing ~link_loads
             ~prior:gravity_prior));
    Test.make ~name:"fig12/estimate-activities"
      (Staged.stage (fun () ->
           Ic_core.Estimate_a.activities ~f:fitted.params.f
             ~preference:fitted.params.preference ~ingress ~egress));
    Test.make ~name:"fig13/closed-form-estimate"
      (Staged.stage (fun () ->
           Ic_core.Closed_form.estimate ~f:0.22 ~ingress ~egress));
  ]

let ablation_tests =
  [
    Test.make ~name:"ablation/tomogravity-cholesky"
      (Staged.stage (fun () ->
           Ic_estimation.Tomogravity.estimate
             ~solver:Ic_estimation.Tomogravity.Cholesky routing ~link_loads
             ~prior:gravity_prior));
    Test.make ~name:"ablation/tomogravity-cg"
      (Staged.stage (fun () ->
           Ic_estimation.Tomogravity.estimate
             ~solver:Ic_estimation.Tomogravity.Cg routing ~link_loads
             ~prior:gravity_prior));
    Test.make ~name:"ablation/ipf-one-bin"
      (Staged.stage (fun () ->
           Ic_estimation.Ipf.fit gravity_prior ~row_targets:ingress
             ~col_targets:egress));
    Test.make ~name:"ablation/nnls-active-set"
      (Staged.stage (fun () -> Ic_linalg.Nnls.solve_gram nnls_g nnls_c));
    Test.make ~name:"ablation/ls-then-clamp"
      (Staged.stage (fun () ->
           let ch =
             Ic_linalg.Chol.factorize_ridge ~ridge:Ic_linalg.Chol.default_ridge
               nnls_g
           in
           Ic_linalg.Vec.clamp_nonneg (Ic_linalg.Chol.solve ch nnls_c)));
    Test.make ~name:"ablation/general-f-fit"
      (Staged.stage (fun () ->
           Ic_core.Fit.fit_general_f fitted.params fit_series));
    Test.make ~name:"ablation/fit-kernel-naive"
      (Staged.stage (fun () ->
           Ic_core.Fit.fit_stable_fp ~kernel:Ic_core.Fit.Naive fit_series));
  ]

(* Batched vs bin-at-a-time estimation: same inputs, same results, the
   batch path hoists the tomogravity plan and scratch buffers across bins. *)
let batch_tests =
  [
    Test.make ~name:"batch/tomogravity-series-64bins"
      (Staged.stage (fun () ->
           Ic_estimation.Tomogravity.estimate_series routing
             ~link_loads:series_link_loads ~priors:series_priors));
    Test.make ~name:"batch/tomogravity-64-independent"
      (Staged.stage (fun () ->
           Array.map2
             (fun y p ->
               Ic_estimation.Tomogravity.estimate routing ~link_loads:y
                 ~prior:p)
             series_link_loads series_priors));
    (* Shared frozen weights across the series: one factorization, then
       interleaved multi-RHS triangular solves (Chol.solve_many_into). *)
    Test.make ~name:"batch/tomogravity-series-shared-weights"
      (Staged.stage
         (let weights =
            Ic_linalg.Vec.clamp_nonneg
              (Ic_traffic.Tm.to_vector (Ic_traffic.Series.tm fit_series 0))
          in
          let plan = Ic_estimation.Tomogravity.make_plan routing in
          fun () ->
            Ic_estimation.Tomogravity.estimate_many ~weights plan
              ~link_loads:series_link_loads ~priors:series_priors));
  ]

(* Streaming engine: per-bin serving cost (prior + tomogravity + IPF over a
   reused plan, refits disabled so the sliding-window refit is measured
   separately below) and the cost of one warm 64-bin refit. *)
let stream_observations =
  let feed =
    Ic_runtime.Feed.create ~noise_sigma:0.01 ~drop_rate:0.02 routing fit_series
      ~seed:11
  in
  Array.init
    (Ic_traffic.Series.length fit_series)
    (fun _ -> Option.get (Ic_runtime.Feed.next feed))

let stream_config =
  {
    (Ic_runtime.Engine.default_config routing binning) with
    Ic_runtime.Engine.refit_every = 1 lsl 30;
    window = Array.length stream_observations;
    initial_params = Some (fitted.params.f, Array.copy fitted.params.preference);
  }

let stream_tests =
  [
    Test.make ~name:"stream/engine-per-bin"
      (Staged.stage
         (let engine = Ic_runtime.Engine.create stream_config in
          let k = ref 0 in
          fun () ->
            let loads, missing = stream_observations.(!k) in
            ignore (Ic_runtime.Engine.step engine ~loads ~missing);
            k := (!k + 1) mod Array.length stream_observations));
    (* The same serving loop with the fast path disabled: per-bin prior
       weights, a fresh Gram + factorization every bin, uncached activity
       recovery. The gap to stream/engine-per-bin is the fast path's win. *)
    Test.make ~name:"stream/engine-per-bin-unfrozen"
      (Staged.stage
         (let engine =
            Ic_runtime.Engine.create
              { stream_config with Ic_runtime.Engine.fast_path = false }
          in
          let k = ref 0 in
          fun () ->
            let loads, missing = stream_observations.(!k) in
            ignore (Ic_runtime.Engine.step engine ~loads ~missing);
            k := (!k + 1) mod Array.length stream_observations));
    Test.make ~name:"stream/refit-window"
      (Staged.stage
         (let engine = Ic_runtime.Engine.create stream_config in
          Array.iter
            (fun (loads, missing) ->
              ignore (Ic_runtime.Engine.step engine ~loads ~missing))
            stream_observations;
          fun () -> ignore (Ic_runtime.Engine.refit engine)));
  ]

(* Parallel execution layer. The work is FIXED across [--jobs] settings —
   a 256-bin series sharded over the pool, and one multiplexing round over
   an 8-engine fleet — so ns/run at --jobs 1 vs --jobs 4 measures speedup
   directly. (On a single-CPU host the pool cannot beat sequential; the
   numbers then measure the coordination overhead instead.) *)
let parallel_tests ~pool =
  let bins = 256 in
  let src = Array.length series_link_loads in
  let par_loads = Array.init bins (fun k -> series_link_loads.(k mod src)) in
  let par_priors = Array.init bins (fun k -> series_priors.(k mod src)) in
  let fleet = 8 in
  let engines =
    Array.init fleet (fun _ -> Ic_runtime.Engine.create stream_config)
  in
  let cursors = Array.make fleet 0 in
  [
    Test.make ~name:"parallel/tomogravity-series-256"
      (Staged.stage (fun () ->
           Ic_estimation.Tomogravity.estimate_series_par ~pool routing
             ~link_loads:par_loads ~priors:par_priors));
    Test.make ~name:"parallel/fleet-round-8-engines"
      (Staged.stage (fun () ->
           ignore
             (Ic_parallel.Pool.map pool ~chunk:1 ~n:fleet (fun ~slot:_ i ->
                  let loads, missing = stream_observations.(cursors.(i)) in
                  ignore (Ic_runtime.Engine.step engines.(i) ~loads ~missing);
                  cursors.(i) <-
                    (cursors.(i) + 1) mod Array.length stream_observations))));
  ]

(* Observability overhead. The traced-off engine must price like
   stream/engine-per-bin (tracing is threaded through every hot path now,
   so this guards the "noop tracer costs a branch" claim); traced-on shows
   the full cost of span capture at 6 spans per bin. The micro pair puts a
   number on one with_span call itself. *)
let obs_tests =
  let module Trace = Ic_obs.Trace in
  let traced_engine tracer =
    let engine = Ic_runtime.Engine.create ?tracer stream_config in
    let k = ref 0 in
    fun () ->
      let loads, missing = stream_observations.(!k) in
      ignore (Ic_runtime.Engine.step engine ~loads ~missing);
      k := (!k + 1) mod Array.length stream_observations
  in
  [
    Test.make ~name:"obs/engine-per-bin-traced-off"
      (Staged.stage (traced_engine None));
    Test.make ~name:"obs/engine-per-bin-traced-on"
      (Staged.stage (traced_engine (Some (Trace.create ~capacity:4096 ()))));
    Test.make ~name:"obs/noop-span"
      (Staged.stage (fun () -> Trace.with_span Trace.noop "bench" Fun.id));
    Test.make ~name:"obs/enabled-span"
      (Staged.stage
         (let tracer = Trace.create ~capacity:1024 () in
          fun () -> Trace.with_span tracer "bench" Fun.id));
  ]

let extension_tests =
  [
    Test.make ~name:"extension/maxent-one-bin"
      (Staged.stage (fun () ->
           Ic_estimation.Entropy.estimate routing ~link_loads
             ~prior:gravity_prior));
    Test.make ~name:"extension/fanout-prior"
      (Staged.stage (fun () ->
           Ic_estimation.Prior.fanout ~calibration:fit_series fit_series));
    Test.make ~name:"extension/anomaly-detect-64bins"
      (Staged.stage (fun () ->
           Ic_core.Anomaly.detect ~threshold:5. fitted.params fit_series));
    Test.make ~name:"extension/pgd-fit-64bins"
      (Staged.stage (fun () ->
           Ic_core.Pgd.fit_stable_fp
             ~options:{ Ic_core.Pgd.default_options with max_iters = 60 }
             fit_series));
    Test.make ~name:"extension/cyclo-fit-weekly"
      (Staged.stage
         (let xs =
            Ic_timeseries.Cyclo.generate
              (Ic_timeseries.Cyclo.make ~base_level:1e6 ())
              binning (Ic_prng.Rng.create 9) ~bins:2016
          in
          fun () -> Ic_timeseries.Cyclo_fit.fit binning xs));
  ]

(* Scenario layer: the cost of reacting to a topology event (a full
   constant-shape route recompute on the Géant-like graph), compiling a
   day-scale adversarial timeline, and the steady-state per-bin cost of
   replaying through the scenario runner (engine step + boundary scan). *)
let scenario_tests =
  let graph = geant_graph in
  let link_ids (e : Ic_topology.Graph.edge) =
    List.filter_map
      (fun (s, d) ->
        Option.map
          (fun (x : Ic_topology.Graph.edge) -> x.id)
          (Ic_topology.Graph.find_edge graph ~src:s ~dst:d))
      [ (e.src, e.dst); (e.dst, e.src) ]
  in
  let down =
    (* first link whose loss keeps the graph connected *)
    let rec go = function
      | [] -> failwith "scenario bench: every link is a bridge"
      | e :: rest -> (
          match Ic_topology.Routing.rebuild ~down:(link_ids e) routing with
          | _ -> link_ids e
          | exception Invalid_argument _ -> go rest)
    in
    go (Ic_topology.Graph.edges graph)
  in
  let e0 =
    List.find
      (fun (e : Ic_topology.Graph.edge) -> e.id = List.hd down)
      (Ic_topology.Graph.edges graph)
  in
  let bins = 48 in
  let spec =
    {
      Ic_core.Tm_family.default_spec with
      Ic_core.Tm_family.nodes = Ic_topology.Graph.node_count graph;
      bins;
    }
  in
  let base =
    Ic_core.Tm_family.generate Ic_core.Tm_family.Ic spec
      (Ic_prng.Rng.create 11)
  in
  let schedule =
    {
      Ic_scenario.Schedule.seed = 11;
      events =
        [
          Ic_scenario.Schedule.Link_fail
            {
              a = Ic_topology.Graph.name graph e0.src;
              b = Ic_topology.Graph.name graph e0.dst;
              at = 12;
              duration = Some 12;
            };
          Ic_scenario.Schedule.Ddos
            { victim = "ie"; at = 24; duration = 6; magnitude = 12. };
          Ic_scenario.Schedule.Flash_crowd
            { node = "be"; at = 36; duration = 6; boost = 3. };
        ];
    }
  in
  let tl = Ic_scenario.Timeline.compile ~graph ~base schedule in
  let scenario_config =
    let c =
      Ic_runtime.Engine.default_config
        (Ic_scenario.Timeline.base_routing tl)
        binning
    in
    { c with Ic_runtime.Engine.refit_every = 8; window = 32; recover_after = 4 }
  in
  [
    Test.make ~name:"scenario/route-recompute"
      (Staged.stage (fun () ->
           ignore (Ic_topology.Routing.rebuild ~down routing)));
    Test.make ~name:"scenario/timeline-compile"
      (Staged.stage (fun () ->
           ignore (Ic_scenario.Timeline.compile ~graph ~base schedule)));
    Test.make ~name:"scenario/overlay-per-bin"
      (Staged.stage
         (let engine = ref (Ic_runtime.Engine.create scenario_config) in
          let feed = ref (Ic_scenario.Runner.feed tl ~seed:11) in
          fun () ->
            if Ic_runtime.Feed.position !feed >= bins then begin
              engine := Ic_runtime.Engine.create scenario_config;
              feed := Ic_scenario.Runner.feed tl ~seed:11
            end;
            let upto = Ic_runtime.Feed.position !feed + 1 in
            ignore (Ic_scenario.Runner.play ~upto !engine !feed tl)));
  ]

(* Resilience: the self-healing runtime's steady-state overheads — the
   anomaly gate's per-bin quarantine decision (the fast-path acceptance is
   that gating stays within a few percent of the plain serving loop), the
   circuit-breaker feed delivery, the per-bin engine snapshot a supervised
   shard takes, and the robust detection scale's rolling-median pass. *)
let resilience_tests =
  [
    Test.make ~name:"resilience/engine-per-bin-gated"
      (Staged.stage
         (let engine =
            Ic_runtime.Engine.create
              { stream_config with Ic_runtime.Engine.gate_refits = true }
          in
          let k = ref 0 in
          fun () ->
            let loads, missing = stream_observations.(!k) in
            ignore (Ic_runtime.Engine.step engine ~loads ~missing);
            k := (!k + 1) mod Array.length stream_observations));
    Test.make ~name:"resilience/breaker-feed-next"
      (Staged.stage
         (let feed = ref None in
          fun () ->
            let f =
              match !feed with
              | Some f when Ic_runtime.Feed.position f
                            < Ic_runtime.Feed.length f ->
                  f
              | _ ->
                  let f =
                    Ic_runtime.Feed.create ~noise_sigma:0.01 ~drop_rate:0.4
                      ~corrupt_rate:0.1
                      ~breaker:Ic_runtime.Feed.default_breaker routing
                      fit_series ~seed:11
                  in
                  feed := Some f;
                  f
            in
            ignore (Ic_runtime.Feed.next f)));
    Test.make ~name:"resilience/snapshot-per-bin"
      (Staged.stage
         (let engine = Ic_runtime.Engine.create stream_config in
          let loads, missing = stream_observations.(0) in
          let () = ignore (Ic_runtime.Engine.step engine ~loads ~missing) in
          fun () -> ignore (Ic_runtime.Engine.snapshot engine)));
    Test.make ~name:"resilience/robust-detect"
      (Staged.stage (fun () ->
           ignore
             (Ic_core.Anomaly.detect ~scale:Ic_core.Anomaly.robust_scale
                fitted.params fit_series)));
  ]

(* Shootout: single-bin estimate cost of every registered estimator family
   on the Geant fixture (calibrated state, reused plan) — the latency axis
   of `ic-lab shootout` pinned as a bench group, so an accidentally
   quadratic stage in any family shows up in the per-PR diff without
   per-family bench code. *)
let shootout_tests =
  let module Estimator = Ic_estimation.Estimator in
  List.map
    (fun name ->
      let (module E : Estimator.S) = Estimator.find_exn name in
      Test.make
        ~name:("shootout/" ^ name ^ "-per-bin")
        (Staged.stage
           (let state = E.calibrate ~routing ~train:(Some fit_series) in
            let plan = Ic_estimation.Tomogravity.make_plan routing in
            let k = ref 0 in
            fun () ->
              let ctx =
                Estimator.make_ctx ~routing ~plan
                  ~link_loads:series_link_loads.(!k) ~bin:!k ()
              in
              ignore
                (Estimator.estimate_bin (module E) state ctx
                  : Ic_traffic.Tm.t * int);
              k := (!k + 1) mod Array.length series_link_loads)))
    (Estimator.names ())

let substrate_tests =
  [
    Test.make ~name:"linalg/cholesky-122"
      (Staged.stage (fun () -> Ic_linalg.Chol.factorize spd_122));
    Test.make ~name:"linalg/cholesky-into-122"
      (Staged.stage
         (let l = Ic_linalg.Mat.create 122 122 in
          fun () -> Ic_linalg.Chol.factorize_into ~l spd_122));
    (* One rank-1 update + downdate pair on a held factor: the matrix
       returns to itself, so the factor cannot drift across runs. This is
       the per-carrier cost of the tomogravity rank-k update tier. *)
    Test.make ~name:"linalg/chol-update-downdate-122"
      (Staged.stage
         (let ch =
            match Ic_linalg.Chol.factorize spd_122 with
            | Ok ch -> ch
            | Error _ -> assert false
          in
          let rng = Ic_prng.Rng.create 12 in
          let x =
            Array.init 122 (fun _ -> Ic_prng.Rng.float_range rng (-1.) 1.)
          in
          let buf = Array.make 122 0. in
          fun () ->
            Array.blit x 0 buf 0 122;
            Ic_linalg.Chol.update ch buf;
            Array.blit x 0 buf 0 122;
            match Ic_linalg.Chol.downdate ch buf with
            | Ok () -> ()
            | Error _ -> assert false));
    Test.make ~name:"linalg/chol-solve-many-16x122"
      (Staged.stage
         (let ch =
            match Ic_linalg.Chol.factorize spd_122 with
            | Ok ch -> ch
            | Error _ -> assert false
          in
          let lt = Ic_linalg.Mat.create 122 122 in
          let () = Ic_linalg.Chol.transpose_into ch ~lt in
          let rng = Ic_prng.Rng.create 13 in
          let rhss =
            Array.init 16 (fun _ ->
                Array.init 122 (fun _ ->
                    Ic_prng.Rng.float_range rng (-1.) 1.))
          in
          let bufs = Array.map Array.copy rhss in
          fun () ->
            Array.iteri (fun i b -> Array.blit rhss.(i) 0 b 0 122) bufs;
            Ic_linalg.Chol.solve_many_into ~lt ch bufs));
    Test.make ~name:"linalg/svd-44x22"
      (Staged.stage (fun () -> Ic_linalg.Svd.decompose qr_tall));
    Test.make ~name:"linalg/eig-60"
      (Staged.stage
         (let m =
            let rng = Ic_prng.Rng.create 8 in
            let b =
              Ic_linalg.Mat.init 60 60 (fun _ _ ->
                  Ic_prng.Rng.float_range rng (-1.) 1.)
            in
            Ic_linalg.Mat.gram b
          in
          fun () -> Ic_linalg.Eig.decompose m));
    Test.make ~name:"stats/pca-150dims"
      (Staged.stage
         (let rng = Ic_prng.Rng.create 10 in
          let data =
            Ic_linalg.Mat.init 200 150 (fun _ _ ->
                Ic_prng.Rng.float_range rng 0. 1.)
          in
          fun () -> Ic_stats.Pca.fit data));
    Test.make ~name:"linalg/qr-44x22"
      (Staged.stage (fun () -> Ic_linalg.Qr.factorize qr_tall));
    Test.make ~name:"topology/routing-build-geant"
      (Staged.stage (fun () -> Ic_topology.Routing.build geant_graph));
    Test.make ~name:"topology/link-loads"
      (Staged.stage (fun () ->
           Ic_topology.Routing.link_loads routing one_bin_vec));
    Test.make ~name:"model/eval-one-bin"
      (Staged.stage (fun () ->
           Ic_core.Model.simplified ~f:0.22
             ~activity:fitted.params.activity.(30)
             ~preference:fitted.params.preference));
    Test.make ~name:"gravity/of-tm"
      (Staged.stage (fun () -> Ic_gravity.Gravity.of_tm one_bin));
    Test.make ~name:"prng/lognormal-1k"
      (Staged.stage
         (let rng = Ic_prng.Rng.create 1 in
          fun () ->
            for _ = 1 to 1000 do
              ignore (Ic_prng.Sampler.lognormal rng ~mu:0. ~sigma:1.)
            done));
  ]

(* ------------------------------------------------------------------ *)
(* Serving plane (custom harness)                                      *)
(* ------------------------------------------------------------------ *)

(* The serving benchmarks need a live acceptor/worker pool, warm client
   connections, and a load generator in flight — a shape bechamel's staged
   closures cannot hold. A small custom harness measures them with the
   same estimator (one discarded warmup pass, then min of [--repeat]
   recorded passes) and merges into the same results list, so the JSON
   trajectory and scripts/bench_diff.sh treat them uniformly.

   Units: serve/request-roundtrip is ns per request on one quiet
   connection. serve/qps-sustained is stored as ns per answered query
   under an unpaced multi-connection blast — lower is better, so the
   bench_diff regression gate applies unchanged, and the "sustains
   >= 10k queries/s" acceptance bar is exactly "<= 100000".
   serve/p99-latency-us is the 99th-percentile round-trip under that same
   blast, in MICROSECONDS (the one non-ns entry; the name carries the
   unit). *)

(* One serving worker per loadgen connection, one such pair per pair of
   available cores: a worker and its client ping-pong in lockstep, so
   each pair wants a core to itself. Oversubscribing a small host
   measures the kernel scheduler instead of the serving plane (on a
   1-CPU host 4/4 sustains ~8.6k qps where 1/1 sustains ~18k). *)
let serve_workers = max 1 (min 4 (Domain.recommended_domain_count () / 2))

let with_serve_server f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ic-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let listen = Ic_serve.Server.Unix_path sock in
  let source = Ic_serve.Source.create routing in
  Ic_serve.Source.publish source ~bin:0 ~level:0 one_bin;
  let handler = Ic_serve.Handler.create [ ("bench", source) ] in
  let config =
    {
      (Ic_serve.Server.default_config listen) with
      Ic_serve.Server.workers = serve_workers;
      max_inflight = 256;
    }
  in
  let server = Ic_serve.Server.start config handler in
  Fun.protect
    ~finally:(fun () ->
      Ic_serve.Server.stop server;
      Ic_serve.Server.wait server)
    (fun () -> f listen)

let serve_roundtrip_ns listen =
  let fd = Ic_serve.Server.connect listen in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let reader = Ic_serve.Wire.reader fd in
      let exchange req =
        Ic_serve.Wire.write_all fd (Ic_serve.Wire.encode_request req);
        match Ic_serve.Wire.read_response reader with
        | `Response (Ic_serve.Wire.Error { message; _ }) ->
            failwith ("serve bench: error response: " ^ message)
        | `Response _ -> ()
        | _ -> failwith "serve bench: connection died mid-roundtrip"
      in
      let iters = 2000 in
      let t0 = Unix.gettimeofday () in
      for k = 1 to iters do
        exchange
          (if k land 1 = 0 then Ic_serve.Wire.Ping (Int64.of_int k)
           else Ic_serve.Wire.Latest_tm { tenant = "bench" })
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters)

(* Keep connections <= workers: a worker owns a connection until its
   client closes it, so more loadgen connections than workers would
   measure accept-queue wait, not serving throughput. *)
let serve_blast listen =
  let config =
    {
      (Ic_serve.Loadgen.default_config listen) with
      Ic_serve.Loadgen.queries = 4000;
      connections = serve_workers;
      tenant = "bench";
    }
  in
  let outcome =
    Ic_serve.Loadgen.run ~probe:(Ic_traffic.Tm.size one_bin) config
  in
  if outcome.Ic_serve.Loadgen.transport_failures > 0 then
    failwith "serve bench: loadgen lost connections";
  let per_query_ns = 1e9 /. Ic_serve.Loadgen.qps outcome in
  let p99_us = Ic_serve.Loadgen.percentile outcome 99. in
  (per_query_ns, p99_us, outcome.Ic_serve.Loadgen.shed, outcome.sent)

let serve_results ~repeat () =
  Printf.printf "== serve plane ==\n%!";
  let min_of xs = Array.fold_left Float.min xs.(0) xs in
  let passes f =
    ignore (f ());
    (* discarded warmup, as for the bechamel groups *)
    Array.init (max 1 repeat) (fun _ -> f ())
  in
  with_serve_server (fun listen ->
      let roundtrip = min_of (passes (fun () -> serve_roundtrip_ns listen)) in
      let blasts = passes (fun () -> serve_blast listen) in
      let per_query = min_of (Array.map (fun (q, _, _, _) -> q) blasts) in
      let p99 = min_of (Array.map (fun (_, p, _, _) -> p) blasts) in
      let shed, sent =
        Array.fold_left
          (fun (s, n) (_, _, shed, sent) -> (s + shed, n + sent))
          (0, 0) blasts
      in
      Printf.printf "  %-36s %8.3f us/run\n%!" "serve/request-roundtrip"
        (roundtrip /. 1e3);
      Printf.printf "  %-36s %8.3f us/query (%.1fk qps sustained)\n%!"
        "serve/qps-sustained" (per_query /. 1e3) (1e6 /. per_query);
      Printf.printf "  %-36s %8.3f us p99, shed rate %d/%d\n%!"
        "serve/p99-latency-us" p99 shed sent;
      [
        ("serve/p99-latency-us", p99);
        ("serve/qps-sustained", per_query);
        ("serve/request-roundtrip", roundtrip);
      ])

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let run_group ~repeat label tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let warmup_cfg =
    Benchmark.cfg ~limit:250 ~quota:(Time.second 0.1) ~kde:None ()
  in
  let measure cfg test =
    let raw = Benchmark.all cfg instances test in
    let analyzed = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      analyzed []
  in
  Printf.printf "== %s ==\n%!" label;
  let results =
    List.concat_map
      (fun test ->
        (* One discarded pass primes caches, branch predictors, and the
           minor heap; then min-of-[repeat] recorded passes. *)
        ignore (measure warmup_cfg test);
        let reps = List.init (max 1 repeat) (fun _ -> measure cfg test) in
        List.fold_left
          (fun acc rep ->
            List.map
              (fun (name, best) ->
                match List.assoc_opt name rep with
                | Some ns when Float.is_finite ns ->
                    (name, if Float.is_finite best then Float.min best ns else ns)
                | _ -> (name, best))
              acc)
          (List.hd reps) (List.tl reps))
      tests
  in
  (* Hashtbl order is nondeterministic: sort by test name so the report is
     stable run-to-run (and diffs of BENCH_*.json files stay readable). *)
  let results = List.sort (fun (a, _) (b, _) -> compare a b) results in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-36s %s/run\n%!" name pretty)
    results;
  results

let write_json path results =
  let label =
    let base = Filename.remove_extension (Filename.basename path) in
    if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
      String.sub base 6 (String.length base - 6)
    else base
  in
  let results = List.sort (fun (a, _) (b, _) -> compare a b) results in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"label\": %S,\n  \"unit\": \"ns/run\",\n" label;
  Printf.fprintf oc "  \"results\": {\n";
  let n = List.length results in
  List.iteri
    (fun k (name, ns) ->
      let value =
        if Float.is_finite ns then Printf.sprintf "%.3f" ns else "null"
      in
      Printf.fprintf oc "    %S: %s%s\n" name value
        (if k = n - 1 then "" else ","))
    results;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d results)\n%!" path n

let () =
  let json_path = ref None in
  let jobs = ref 1 in
  let repeat = ref 3 in
  let group_filter = ref None in
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--json" when !i + 1 < Array.length argv ->
        incr i;
        json_path := Some argv.(!i)
    | "--jobs" when !i + 1 < Array.length argv ->
        incr i;
        jobs := int_of_string argv.(!i)
    | "--repeat" when !i + 1 < Array.length argv ->
        incr i;
        repeat := int_of_string argv.(!i)
    | "--group" when !i + 1 < Array.length argv ->
        incr i;
        group_filter := Some argv.(!i)
    | arg ->
        Printf.eprintf
          "usage: %s [--json <path>] [--jobs <n>] [--repeat <n>] \
           [--group <prefix>[,<prefix>...]] (unknown argument %s)\n"
          argv.(0) arg;
        exit 2);
    incr i
  done;
  Printf.printf
    "IC traffic-matrix benchmarks (bechamel), --jobs %d, min of %d\n%!" !jobs
    !repeat;
  Ic_parallel.Pool.with_pool ~jobs:!jobs (fun pool ->
      let groups =
        [
          ("figure kernels", figure_tests);
          ("ablations", ablation_tests);
          ("batched estimation", batch_tests);
          ("streaming engine", stream_tests);
          ("parallel", parallel_tests ~pool);
          ("observability", obs_tests);
          ("extensions", extension_tests);
          ("scenario", scenario_tests);
          ("resilience", resilience_tests);
          ("shootout", shootout_tests);
          ("substrates", substrate_tests);
        ]
      in
      (* "serve plane" is a custom-harness group (live server + load
         generator), selected by the same prefix filter as the bechamel
         groups. *)
      let matches label =
        match !group_filter with
        | None -> true
        | Some g ->
            List.exists
              (fun p -> p <> "" && String.starts_with ~prefix:p label)
              (String.split_on_char ',' g)
      in
      let selected = List.filter (fun (label, _) -> matches label) groups in
      let serve_selected = matches "serve plane" in
      if selected = [] && not serve_selected then begin
        Printf.eprintf "no benchmark group matches %S\n"
          (Option.value ~default:"" !group_filter);
        exit 2
      end;
      let all =
        List.concat_map
          (fun (label, tests) -> run_group ~repeat:!repeat label tests)
          selected
      in
      let all =
        if serve_selected then all @ serve_results ~repeat:!repeat () else all
      in
      Option.iter (fun path -> write_json path all) !json_path);
  print_endline "done."
